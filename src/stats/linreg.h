#ifndef NLQ_STATS_LINREG_H_
#define NLQ_STATS_LINREG_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// Linear regression model Y = β₀ + βᵀx fitted by least squares from
/// sufficient statistics alone (Section 3.2: "β = Q⁻¹ (X Yᵀ)").
struct LinearRegressionModel {
  size_t d = 0;          // number of predictor dimensions
  double n = 0.0;        // training rows
  linalg::Vector beta;   // d+1 coefficients; beta[0] is the intercept β₀
  linalg::Matrix var_beta;  // (d+1)x(d+1) variance-covariance of β
  double sse = 0.0;      // Σ (yᵢ − ŷᵢ)²
  double sst = 0.0;      // Σ (yᵢ − ȳ)²
  double r2 = 0.0;       // 1 − SSE/SST

  /// ŷ = β₀ + Σ βₐ xₐ for a d-vector.
  double Predict(const double* x) const;
  double Predict(const linalg::Vector& x) const { return Predict(x.data()); }

  /// Standard error of coefficient i (sqrt of var_beta diagonal).
  double StdError(size_t i) const;

  /// t-statistic βᵢ / se(βᵢ); infinite when the fit is exact.
  double TStatistic(size_t i) const;
};

/// Fits from SufStats computed over the augmented point z = (x, y):
/// `stats.d()` must be d+1 with the dependent variable Y as the LAST
/// dimension, and the kind must be triangular or full.
///
/// The normal-equation system is assembled from (n, L, Q):
///   A = [[n, Lₓᵀ], [Lₓ, Qₓₓ]],  b = [L_y, Q_{x,y}],  A β = b.
/// SSE follows without the paper's second data scan because
/// Σ(y−ŷ)² = Q_yy − βᵀb when β solves the normal equations exactly
/// (the paper rescans X since its UDF returns only the packed
/// matrices; the closed form is algebraically identical).
StatusOr<LinearRegressionModel> FitLinearRegression(const SufStats& stats);

/// Ridge (L2-regularized) regression from the same statistics:
/// β = (X Xᵀ + λ I')⁻¹ X Yᵀ with I' the identity except a zero in the
/// intercept position (the intercept is conventionally unpenalized).
/// λ = 0 reduces to FitLinearRegression; small λ also stabilizes
/// nearly-collinear predictors. sse/sst/r2 are reported for the
/// regularized coefficients; var_beta uses the classical formula with
/// the regularized inverse (an approximation, as usual for ridge).
StatusOr<LinearRegressionModel> FitRidgeRegression(const SufStats& stats,
                                                   double lambda);

}  // namespace nlq::stats

#endif  // NLQ_STATS_LINREG_H_
