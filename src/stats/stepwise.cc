#include "stats/stepwise.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"

namespace nlq::stats {

StatusOr<LinearRegressionModel> FitLinearRegressionSubset(
    const SufStats& stats, const std::vector<size_t>& predictors) {
  if (stats.kind() == MatrixKind::kDiagonal) {
    return Status::InvalidArgument(
        "subset regression requires a triangular or full Q");
  }
  if (stats.d() < 2) {
    return Status::InvalidArgument("stats must cover predictors plus Y");
  }
  const size_t y = stats.d() - 1;  // Y is the last dimension
  if (predictors.empty()) {
    return Status::InvalidArgument("predictor subset must not be empty");
  }
  for (size_t i = 0; i < predictors.size(); ++i) {
    if (predictors[i] >= y) {
      return Status::InvalidArgument(StringPrintf(
          "predictor index %zu out of range 0..%zu", predictors[i], y - 1));
    }
    for (size_t j = 0; j < i; ++j) {
      if (predictors[j] == predictors[i]) {
        return Status::InvalidArgument("duplicate predictor index");
      }
    }
  }
  const size_t p = predictors.size();
  const double n = stats.n();
  if (n <= static_cast<double>(p) + 1.0) {
    return Status::InvalidArgument("subset regression needs n > p + 1");
  }

  // Subset normal equations: A and b are just index-gathered entries
  // of the full statistics.
  linalg::Matrix a(p + 1, p + 1);
  linalg::Vector b(p + 1);
  a(0, 0) = n;
  b[0] = stats.L(y);
  for (size_t i = 0; i < p; ++i) {
    const size_t pi = predictors[i];
    a(0, i + 1) = stats.L(pi);
    a(i + 1, 0) = stats.L(pi);
    b[i + 1] = stats.Q(pi, y);
    for (size_t j = 0; j < p; ++j) {
      a(i + 1, j + 1) = stats.Q(pi, predictors[j]);
    }
  }

  LinearRegressionModel model;
  model.d = p;
  model.n = n;
  StatusOr<linalg::CholeskyDecomposition> chol =
      linalg::CholeskyDecomposition::Compute(a);
  linalg::Matrix a_inv;
  if (chol.ok()) {
    NLQ_ASSIGN_OR_RETURN(model.beta, chol->Solve(b));
    NLQ_ASSIGN_OR_RETURN(a_inv, chol->Inverse());
  } else {
    NLQ_ASSIGN_OR_RETURN(linalg::LuDecomposition lu,
                         linalg::LuDecomposition::Compute(a));
    NLQ_ASSIGN_OR_RETURN(model.beta, lu.Solve(b));
    NLQ_ASSIGN_OR_RETURN(a_inv, lu.Inverse());
  }

  const double q_yy = stats.Q(y, y);
  model.sse = std::max(0.0, q_yy - linalg::Dot(model.beta, b));
  model.sst = std::max(0.0, q_yy - stats.L(y) * stats.L(y) / n);
  model.r2 = model.sst > 0.0 ? 1.0 - model.sse / model.sst : 0.0;
  const double dof = n - static_cast<double>(p) - 1.0;
  model.var_beta = a_inv * (model.sse / dof);
  return model;
}

StatusOr<StepwiseResult> ForwardStepwiseRegression(
    const SufStats& stats, const StepwiseOptions& options) {
  if (stats.d() < 2) {
    return Status::InvalidArgument("stats must cover predictors plus Y");
  }
  const size_t d = stats.d() - 1;
  const size_t limit =
      options.max_predictors == 0 ? d : std::min(options.max_predictors, d);

  StepwiseResult result;
  double current_r2 = 0.0;
  std::vector<bool> used(d, false);

  while (result.selected.size() < limit) {
    double best_r2 = current_r2;
    size_t best_var = d;  // sentinel
    LinearRegressionModel best_model;
    for (size_t candidate = 0; candidate < d; ++candidate) {
      if (used[candidate]) continue;
      std::vector<size_t> trial = result.selected;
      trial.push_back(candidate);
      // A candidate that makes the system singular (collinear) is
      // simply skipped, as classic stepwise procedures do.
      StatusOr<LinearRegressionModel> fit =
          FitLinearRegressionSubset(stats, trial);
      if (!fit.ok()) continue;
      if (fit->r2 > best_r2) {
        best_r2 = fit->r2;
        best_var = candidate;
        best_model = std::move(fit).value();
      }
    }
    if (best_var == d || best_r2 - current_r2 < options.min_r2_gain) break;
    used[best_var] = true;
    result.selected.push_back(best_var);
    result.r2_path.push_back(best_r2);
    result.model = std::move(best_model);
    current_r2 = best_r2;
  }

  if (result.selected.empty()) {
    return Status::Internal(
        "stepwise selection found no predictor with positive R^2 gain");
  }
  return result;
}


StatusOr<std::vector<std::pair<size_t, double>>> RankPredictorsByCorrelation(
    const SufStats& stats) {
  if (stats.d() < 2) {
    return Status::InvalidArgument("stats must cover predictors plus Y");
  }
  NLQ_ASSIGN_OR_RETURN(linalg::Matrix rho, stats.CorrelationMatrix());
  const size_t y = stats.d() - 1;
  std::vector<std::pair<size_t, double>> ranking;
  ranking.reserve(y);
  for (size_t a = 0; a < y; ++a) {
    ranking.emplace_back(a, std::fabs(rho(a, y)));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const auto& lhs, const auto& rhs) {
              return lhs.second > rhs.second;
            });
  return ranking;
}

}  // namespace nlq::stats
