#include "stats/em.h"

#include <cmath>
#include <limits>

#include "common/random.h"

namespace nlq::stats {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// log N(x | mean_j, diag(var_j)) for one cluster row of the model.
double LogGaussianDiag(const double* x, const linalg::Matrix& means,
                       const linalg::Matrix& variances, size_t j, size_t d) {
  double log_det = 0.0;
  double quad = 0.0;
  for (size_t a = 0; a < d; ++a) {
    const double var = variances(j, a);
    const double diff = x[a] - means(j, a);
    log_det += std::log(var);
    quad += diff * diff / var;
  }
  return -0.5 * (static_cast<double>(d) * kLog2Pi + log_det + quad);
}

/// log(Σ exp(v_i)) without overflow.
double LogSumExp(const linalg::Vector& v) {
  double max = -std::numeric_limits<double>::infinity();
  for (double x : v) max = std::max(max, x);
  if (!std::isfinite(max)) return max;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - max);
  return max + std::log(sum);
}

}  // namespace

double GaussianMixtureModel::LogDensity(const double* x) const {
  linalg::Vector logs(k);
  for (size_t j = 0; j < k; ++j) {
    logs[j] = std::log(std::max(weights[j], 1e-300)) +
              LogGaussianDiag(x, means, variances, j, d);
  }
  return LogSumExp(logs);
}

linalg::Vector GaussianMixtureModel::Responsibilities(const double* x) const {
  linalg::Vector logs(k);
  for (size_t j = 0; j < k; ++j) {
    logs[j] = std::log(std::max(weights[j], 1e-300)) +
              LogGaussianDiag(x, means, variances, j, d);
  }
  const double normalizer = LogSumExp(logs);
  linalg::Vector out(k);
  for (size_t j = 0; j < k; ++j) out[j] = std::exp(logs[j] - normalizer);
  return out;
}

size_t GaussianMixtureModel::MostLikelyCluster(const double* x) const {
  const linalg::Vector resp = Responsibilities(x);
  size_t best = 0;
  for (size_t j = 1; j < k; ++j) {
    if (resp[j] > resp[best]) best = j;
  }
  return best;
}

GaussianMixtureModel MixtureFromKMeans(const KMeansModel& kmeans,
                                       double min_variance) {
  GaussianMixtureModel model;
  model.d = kmeans.d;
  model.k = kmeans.k;
  model.means = kmeans.centroids;
  model.variances = kmeans.radii;
  model.weights = kmeans.weights;
  double weight_sum = 0.0;
  for (double w : model.weights) weight_sum += w;
  for (size_t j = 0; j < model.k; ++j) {
    if (weight_sum > 0.0) {
      model.weights[j] /= weight_sum;
    } else {
      model.weights[j] = 1.0 / static_cast<double>(model.k);
    }
    for (size_t a = 0; a < model.d; ++a) {
      model.variances(j, a) = std::max(model.variances(j, a), min_variance);
    }
  }
  return model;
}

StatusOr<GaussianMixtureModel> FitGaussianMixture(
    const std::vector<linalg::Vector>& points, const EmOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("EM needs at least one point");
  }
  if (options.k == 0) return Status::InvalidArgument("EM needs k >= 1");
  const size_t d = points[0].size();
  const size_t k = options.k;
  const double n = static_cast<double>(points.size());

  // Initialize from a short K-means run (standard EM practice).
  KMeansOptions km;
  km.k = k;
  km.max_iterations = 3;
  km.seed = options.seed;
  NLQ_ASSIGN_OR_RETURN(KMeansModel seed_model, FitKMeans(points, km));
  GaussianMixtureModel model =
      MixtureFromKMeans(seed_model, options.min_variance);
  // Degenerate K-means radii (singleton clusters) get a global-scale
  // floor so the first E step is well-conditioned.
  for (size_t j = 0; j < k; ++j) {
    for (size_t a = 0; a < d; ++a) {
      if (model.variances(j, a) <= options.min_variance) {
        model.variances(j, a) = 1.0;
      }
    }
  }

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E step + weighted sufficient statistics in one pass: soft
    // counts N_j, weighted sums L_j, weighted squared sums Q_j(diag).
    linalg::Vector soft_n(k, 0.0);
    linalg::Matrix soft_l(k, d);
    linalg::Matrix soft_q(k, d);
    double log_likelihood = 0.0;
    for (const auto& p : points) {
      const linalg::Vector resp = model.Responsibilities(p.data());
      log_likelihood += model.LogDensity(p.data());
      for (size_t j = 0; j < k; ++j) {
        const double r = resp[j];
        if (r <= 0.0) continue;
        soft_n[j] += r;
        for (size_t a = 0; a < d; ++a) {
          soft_l(j, a) += r * p[a];
          soft_q(j, a) += r * p[a] * p[a];
        }
      }
    }

    // M step: C = L/N, R = Q/N - C^2, W = N/n — the Section 3.2
    // equations with soft counts.
    for (size_t j = 0; j < k; ++j) {
      model.weights[j] = soft_n[j] / n;
      if (soft_n[j] <= 1e-12) continue;  // dead component keeps params
      for (size_t a = 0; a < d; ++a) {
        const double mean = soft_l(j, a) / soft_n[j];
        model.means(j, a) = mean;
        model.variances(j, a) = std::max(
            options.min_variance, soft_q(j, a) / soft_n[j] - mean * mean);
      }
    }

    model.log_likelihood = log_likelihood;
    model.iterations_run = iter + 1;
    if (std::isfinite(prev_ll) &&
        (log_likelihood - prev_ll) / n < options.tolerance) {
      break;
    }
    prev_ll = log_likelihood;
  }
  return model;
}

}  // namespace nlq::stats
