#include "stats/describe.h"

#include <cmath>

#include "common/strings.h"

namespace nlq::stats {

StatusOr<std::vector<DimensionSummary>> Describe(const SufStats& stats) {
  if (stats.n() <= 0.0) {
    return Status::InvalidArgument("cannot describe empty statistics");
  }
  const double n = stats.n();
  std::vector<DimensionSummary> out(stats.d());
  for (size_t a = 0; a < stats.d(); ++a) {
    DimensionSummary& s = out[a];
    s.mean = stats.L(a) / n;
    s.variance = std::max(0.0, stats.Q(a, a) / n - s.mean * s.mean);
    s.stddev = std::sqrt(s.variance);
    s.min = stats.Min(a);
    s.max = stats.Max(a);
  }
  return out;
}

StatusOr<std::string> DescribeTable(const SufStats& stats,
                                    const std::vector<std::string>& names) {
  if (!names.empty() && names.size() != stats.d()) {
    return Status::InvalidArgument(
        "names must be empty or have one entry per dimension");
  }
  NLQ_ASSIGN_OR_RETURN(std::vector<DimensionSummary> summaries,
                       Describe(stats));
  std::string out = StringPrintf("n = %.0f\n", stats.n());
  out += StringPrintf("%-12s %12s %12s %12s %12s\n", "dimension", "mean",
                      "stddev", "min", "max");
  for (size_t a = 0; a < summaries.size(); ++a) {
    const std::string name =
        names.empty() ? "X" + std::to_string(a + 1) : names[a];
    out += StringPrintf("%-12s %12.4f %12.4f %12.4f %12.4f\n", name.c_str(),
                        summaries[a].mean, summaries[a].stddev,
                        summaries[a].min, summaries[a].max);
  }
  return out;
}

}  // namespace nlq::stats
