#include "stats/model_tables.h"

#include "common/strings.h"

namespace nlq::stats {
namespace {

std::string DimColumnsDdl(size_t d) {
  std::string out;
  for (size_t a = 1; a <= d; ++a) {
    out += StringPrintf(", X%zu DOUBLE", a);
  }
  return out;
}

void AppendValues(std::string* sql, const double* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) *sql += ", ";
    AppendDouble(sql, values[i]);
  }
}

}  // namespace

Status DropTableIfExists(engine::Database* db, const std::string& name) {
  if (!db->catalog().HasTable(name)) return Status::OK();
  return db->ExecuteCommand("DROP TABLE " + name);
}

Status StoreBetaTable(engine::Database* db, const std::string& name,
                      const LinearRegressionModel& model) {
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, name));
  std::string ddl = "CREATE TABLE " + name + " (b0 DOUBLE";
  for (size_t a = 1; a <= model.d; ++a) {
    ddl += StringPrintf(", b%zu DOUBLE", a);
  }
  ddl += ")";
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(ddl));

  std::string insert = "INSERT INTO " + name + " VALUES (";
  AppendValues(&insert, model.beta.data(), model.beta.size());
  insert += ")";
  return db->ExecuteCommand(insert);
}

StatusOr<linalg::Vector> LoadBetaTable(engine::Database* db,
                                       const std::string& name) {
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet result,
                       db->Execute("SELECT * FROM " + name));
  if (result.num_rows() != 1) {
    return Status::InvalidArgument("BETA table must have exactly one row");
  }
  linalg::Vector beta(result.num_columns());
  for (size_t c = 0; c < result.num_columns(); ++c) {
    beta[c] = result.GetDouble(0, c);
  }
  return beta;
}

Status StorePcaTables(engine::Database* db, const std::string& mu_name,
                      const std::string& lambda_name, const PcaModel& model) {
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, mu_name));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, lambda_name));

  std::string mu_ddl =
      "CREATE TABLE " + mu_name + " (" + DimColumnsDdl(model.d).substr(2) + ")";
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(mu_ddl));
  std::string mu_insert = "INSERT INTO " + mu_name + " VALUES (";
  AppendValues(&mu_insert, model.mu.data(), model.mu.size());
  mu_insert += ")";
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(mu_insert));

  std::string lambda_ddl =
      "CREATE TABLE " + lambda_name + " (j BIGINT" + DimColumnsDdl(model.d) +
      ")";
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(lambda_ddl));
  for (size_t j = 0; j < model.k; ++j) {
    std::string insert =
        "INSERT INTO " + lambda_name + StringPrintf(" VALUES (%zu", j + 1);
    for (size_t a = 0; a < model.d; ++a) {
      insert += ", ";
      double entry = model.lambda(a, j);
      if (model.input == PcaInput::kCorrelation && model.sigma[a] > 0.0) {
        entry /= model.sigma[a];  // fold the 1/σ centering scale in
      }
      AppendDouble(&insert, entry);
    }
    insert += ")";
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(insert));
  }
  return Status::OK();
}

Status StoreClusterTables(engine::Database* db, const std::string& c_name,
                          const std::string& r_name, const std::string& w_name,
                          const KMeansModel& model) {
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, c_name));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, r_name));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, w_name));

  for (const std::string* name : {&c_name, &r_name}) {
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(
        "CREATE TABLE " + *name + " (j BIGINT" + DimColumnsDdl(model.d) + ")"));
  }
  NLQ_RETURN_IF_ERROR(
      db->ExecuteCommand("CREATE TABLE " + w_name + " (j BIGINT, w DOUBLE)"));

  for (size_t j = 0; j < model.k; ++j) {
    std::string c_insert =
        "INSERT INTO " + c_name + StringPrintf(" VALUES (%zu", j + 1);
    std::string r_insert =
        "INSERT INTO " + r_name + StringPrintf(" VALUES (%zu", j + 1);
    for (size_t a = 0; a < model.d; ++a) {
      c_insert += ", ";
      AppendDouble(&c_insert, model.centroids(j, a));
      r_insert += ", ";
      AppendDouble(&r_insert, model.radii(j, a));
    }
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(c_insert + ")"));
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(r_insert + ")"));
    std::string w_insert =
        "INSERT INTO " + w_name + StringPrintf(" VALUES (%zu, ", j + 1);
    AppendDouble(&w_insert, model.weights[j]);
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(w_insert + ")"));
  }
  return Status::OK();
}

StatusOr<KMeansModel> LoadClusterTables(engine::Database* db,
                                        const std::string& c_name,
                                        const std::string& r_name,
                                        const std::string& w_name) {
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet c_rows,
                       db->Execute("SELECT * FROM " + c_name + " ORDER BY j"));
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet r_rows,
                       db->Execute("SELECT * FROM " + r_name + " ORDER BY j"));
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet w_rows,
                       db->Execute("SELECT * FROM " + w_name + " ORDER BY j"));
  const size_t k = c_rows.num_rows();
  if (k == 0 || c_rows.num_columns() < 2) {
    return Status::InvalidArgument("empty or malformed centroid table");
  }
  const size_t d = c_rows.num_columns() - 1;
  if (r_rows.num_rows() != k || w_rows.num_rows() != k) {
    return Status::InvalidArgument("cluster tables disagree on k");
  }

  KMeansModel model;
  model.d = d;
  model.k = k;
  model.centroids = linalg::Matrix(k, d);
  model.radii = linalg::Matrix(k, d);
  model.weights.assign(k, 0.0);
  model.counts.assign(k, 0.0);
  for (size_t j = 0; j < k; ++j) {
    for (size_t a = 0; a < d; ++a) {
      model.centroids(j, a) = c_rows.GetDouble(j, a + 1);
      model.radii(j, a) = r_rows.GetDouble(j, a + 1);
    }
    model.weights[j] = w_rows.GetDouble(j, 1);
  }
  return model;
}

}  // namespace nlq::stats
