#ifndef NLQ_STATS_NAIVE_BAYES_H_
#define NLQ_STATS_NAIVE_BAYES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "linalg/matrix.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// Gaussian Naive Bayes — the paper's future-work claim made concrete
/// ("other statistical techniques can benefit from the same approach:
/// finding matrices that summarize large data sets"). The classifier
/// is fully determined by per-class diagonal sufficient statistics
/// (N_j, L_j, Q_j), i.e. ONE grouped aggregate-UDF scan:
///   prior_j = N_j / n,  mean_j = L_j / N_j,
///   var_j = Q_j / N_j − mean_j²  (per dimension).
struct NaiveBayesModel {
  size_t d = 0;
  size_t k = 0;                       // number of classes
  std::vector<int64_t> class_labels;  // original label per class index
  linalg::Vector priors;              // k
  linalg::Matrix means;               // k x d
  linalg::Matrix variances;           // k x d (floored)

  /// log p(class j) + log p(x | class j).
  double LogJoint(const double* x, size_t j) const;

  /// 0-based index of the most probable class.
  size_t Classify(const double* x) const;
  size_t Classify(const linalg::Vector& x) const { return Classify(x.data()); }

  /// The original label of the most probable class.
  int64_t PredictLabel(const double* x) const {
    return class_labels[Classify(x)];
  }
};

/// Builds the classifier from per-class statistics (e.g. the result of
/// WarehouseMiner::ComputeGroupedSufStats grouped by the label
/// column). Classes with no rows are rejected; variances are floored
/// at `variance_floor`.
StatusOr<NaiveBayesModel> FitNaiveBayes(
    const std::map<int64_t, SufStats>& per_class,
    double variance_floor = 1e-6);

/// Registers gaussnll(x1..xd, mu1..mud, var1..vard) -> DOUBLE, the
/// negative Gaussian log-likelihood used by the in-engine scoring
/// query (smaller = more likely).
Status RegisterNaiveBayesUdfs(udf::UdfRegistry* registry);

/// Stores the model as table NB(j, prior, M1..Md, V1..Vd) with
/// j = 1..k row indices (labels are a client-side mapping via
/// `class_labels`). Replaces an existing table.
Status StoreNaiveBayesTable(engine::Database* db, const std::string& name,
                            const NaiveBayesModel& model);

/// One-scan scoring query: for each row the k per-class negative
/// log-joints are computed with gaussnll and the argmin picked with
/// clusterscore, yielding the 1-based class INDEX as column `j`.
std::string NaiveBayesScoreUdfQuery(const std::string& x_table,
                                    const std::string& nb_table, size_t d,
                                    size_t k,
                                    const std::string& id_column = "i");

/// Pure-SQL alternative (no gaussnll UDF): one scan materializing the
/// k per-class negative log-joints d1..dk as interpreted arithmetic,
/// then pick the argmin with KMeansAssignSqlQuery over the result —
/// the same two-scan structure the paper measures for clustering SQL.
std::string NaiveBayesNllSqlQuery(const std::string& x_table,
                                  const std::string& nb_table, size_t d,
                                  size_t k,
                                  const std::string& id_column = "i");

}  // namespace nlq::stats

#endif  // NLQ_STATS_NAIVE_BAYES_H_
