#include "stats/sufstats.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace nlq::stats {

StatusOr<MatrixKind> MatrixKindFromString(std::string_view s) {
  const std::string lower = AsciiToLower(s);
  if (lower == "diag" || lower == "diagonal") return MatrixKind::kDiagonal;
  if (lower == "triang" || lower == "triangular" || lower == "lower") {
    return MatrixKind::kLowerTriangular;
  }
  if (lower == "full") return MatrixKind::kFull;
  return Status::InvalidArgument("unknown matrix kind '" + std::string(s) +
                                 "' (expected diag|triang|full)");
}

const char* MatrixKindName(MatrixKind kind) {
  switch (kind) {
    case MatrixKind::kDiagonal:
      return "diag";
    case MatrixKind::kLowerTriangular:
      return "triang";
    case MatrixKind::kFull:
      return "full";
  }
  return "?";
}

SufStats::SufStats(size_t d, MatrixKind kind)
    : d_(d),
      kind_(kind),
      l_(d, 0.0),
      q_(d * d, 0.0),
      min_(d, std::numeric_limits<double>::infinity()),
      max_(d, -std::numeric_limits<double>::infinity()) {}

void SufStats::Update(const double* x) {
  n_ += 1.0;
  const size_t d = d_;
  switch (kind_) {
    case MatrixKind::kDiagonal:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        l_[a] += xa;
        q_[a * d + a] += xa * xa;
      }
      break;
    case MatrixKind::kLowerTriangular:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        l_[a] += xa;
        double* row = &q_[a * d];
        for (size_t b = 0; b <= a; ++b) row[b] += xa * x[b];
      }
      break;
    case MatrixKind::kFull:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        l_[a] += xa;
        double* row = &q_[a * d];
        for (size_t b = 0; b < d; ++b) row[b] += xa * x[b];
      }
      break;
  }
  for (size_t a = 0; a < d; ++a) {
    if (x[a] < min_[a]) min_[a] = x[a];
    if (x[a] > max_[a]) max_[a] = x[a];
  }
}

Status SufStats::Merge(const SufStats& other) {
  if (other.d_ != d_ || other.kind_ != kind_) {
    return Status::InvalidArgument(
        "cannot merge SufStats with different d or matrix kind");
  }
  n_ += other.n_;
  for (size_t a = 0; a < d_; ++a) {
    l_[a] += other.l_[a];
    if (other.min_[a] < min_[a]) min_[a] = other.min_[a];
    if (other.max_[a] > max_[a]) max_[a] = other.max_[a];
  }
  for (size_t i = 0; i < q_.size(); ++i) q_[i] += other.q_[i];
  return Status::OK();
}


void SufStats::Downdate(const double* x) {
  n_ -= 1.0;
  const size_t d = d_;
  switch (kind_) {
    case MatrixKind::kDiagonal:
      for (size_t a = 0; a < d; ++a) {
        l_[a] -= x[a];
        q_[a * d + a] -= x[a] * x[a];
      }
      break;
    case MatrixKind::kLowerTriangular:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        l_[a] -= xa;
        double* row = &q_[a * d];
        for (size_t b = 0; b <= a; ++b) row[b] -= xa * x[b];
      }
      break;
    case MatrixKind::kFull:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        l_[a] -= xa;
        double* row = &q_[a * d];
        for (size_t b = 0; b < d; ++b) row[b] -= xa * x[b];
      }
      break;
  }
}

Status SufStats::Subtract(const SufStats& other) {
  if (other.d_ != d_ || other.kind_ != kind_) {
    return Status::InvalidArgument(
        "cannot subtract SufStats with different d or matrix kind");
  }
  n_ -= other.n_;
  for (size_t a = 0; a < d_; ++a) l_[a] -= other.l_[a];
  for (size_t i = 0; i < q_.size(); ++i) q_[i] -= other.q_[i];
  return Status::OK();
}

linalg::Vector SufStats::Mean() const {
  linalg::Vector mu(d_, 0.0);
  if (n_ <= 0.0) return mu;
  for (size_t a = 0; a < d_; ++a) mu[a] = l_[a] / n_;
  return mu;
}

StatusOr<linalg::Matrix> SufStats::CovarianceMatrix() const {
  if (kind_ == MatrixKind::kDiagonal) {
    return Status::InvalidArgument(
        "covariance matrix requires a triangular or full Q");
  }
  if (n_ <= 0.0) return Status::InvalidArgument("covariance requires n > 0");
  linalg::Matrix v(d_, d_);
  const double inv_n = 1.0 / n_;
  const double inv_n2 = inv_n * inv_n;
  for (size_t a = 0; a < d_; ++a) {
    for (size_t b = 0; b < d_; ++b) {
      v(a, b) = Q(a, b) * inv_n - l_[a] * l_[b] * inv_n2;
    }
  }
  return v;
}

StatusOr<linalg::Matrix> SufStats::CorrelationMatrix() const {
  if (kind_ == MatrixKind::kDiagonal) {
    return Status::InvalidArgument(
        "correlation matrix requires a triangular or full Q");
  }
  if (n_ <= 1.0) return Status::InvalidArgument("correlation requires n > 1");
  std::vector<double> denom(d_);
  for (size_t a = 0; a < d_; ++a) {
    const double s = n_ * Q(a, a) - l_[a] * l_[a];
    if (s <= 0.0) {
      return Status::Internal(StringPrintf(
          "dimension %zu is constant; correlation undefined", a + 1));
    }
    denom[a] = std::sqrt(s);
  }
  linalg::Matrix rho(d_, d_);
  for (size_t a = 0; a < d_; ++a) {
    rho(a, a) = 1.0;
    for (size_t b = 0; b < a; ++b) {
      const double r = (n_ * Q(a, b) - l_[a] * l_[b]) / (denom[a] * denom[b]);
      rho(a, b) = r;
      rho(b, a) = r;
    }
  }
  return rho;
}

linalg::Matrix SufStats::QMatrix() const {
  linalg::Matrix q(d_, d_);
  for (size_t a = 0; a < d_; ++a) {
    for (size_t b = 0; b < d_; ++b) q(a, b) = Q(a, b);
  }
  return q;
}

size_t SufStats::NumQEntries() const {
  switch (kind_) {
    case MatrixKind::kDiagonal:
      return d_;
    case MatrixKind::kLowerTriangular:
      return d_ * (d_ + 1) / 2;
    case MatrixKind::kFull:
      return d_ * d_;
  }
  return 0;
}

std::string SufStats::ToPackedString() const {
  std::string out;
  out.reserve(32 + (3 * d_ + NumQEntries()) * 18);
  out += std::to_string(d_);
  out += '|';
  out += std::to_string(static_cast<int>(kind_));
  out += '|';
  AppendDouble(&out, n_);
  out += '|';
  for (size_t a = 0; a < d_; ++a) {
    if (a > 0) out += ';';
    AppendDouble(&out, l_[a]);
  }
  out += '|';
  for (size_t a = 0; a < d_; ++a) {
    if (a > 0) out += ';';
    AppendDouble(&out, n_ > 0 ? min_[a] : 0.0);
  }
  out += '|';
  for (size_t a = 0; a < d_; ++a) {
    if (a > 0) out += ';';
    AppendDouble(&out, n_ > 0 ? max_[a] : 0.0);
  }
  out += '|';
  bool first = true;
  for (size_t a = 0; a < d_; ++a) {
    if (kind_ == MatrixKind::kDiagonal) {
      if (!first) out += ';';
      AppendDouble(&out, q_[a * d_ + a]);
      first = false;
      continue;
    }
    const size_t b_hi = kind_ == MatrixKind::kLowerTriangular ? a + 1 : d_;
    for (size_t b = 0; b < b_hi; ++b) {
      if (!first) out += ';';
      AppendDouble(&out, q_[a * d_ + b]);
      first = false;
    }
  }
  return out;
}

StatusOr<SufStats> SufStats::FromPackedString(std::string_view packed) {
  const std::vector<std::string_view> sections = SplitString(packed, '|');
  if (sections.size() != 7) {
    return Status::ParseError("packed SufStats must have 7 '|' sections");
  }
  NLQ_ASSIGN_OR_RETURN(int64_t d_val, ParseInt64(sections[0]));
  NLQ_ASSIGN_OR_RETURN(int64_t kind_val, ParseInt64(sections[1]));
  if (d_val < 0 || kind_val < 0 || kind_val > 2) {
    return Status::ParseError("invalid d or kind in packed SufStats");
  }
  const size_t d = static_cast<size_t>(d_val);
  SufStats stats(d, static_cast<MatrixKind>(kind_val));
  NLQ_ASSIGN_OR_RETURN(stats.n_, ParseDouble(sections[2]));

  auto parse_list = [](std::string_view text, size_t expect,
                       std::vector<double>* out) -> Status {
    const std::vector<std::string_view> parts = SplitString(text, ';');
    if (expect == 0 && text.empty()) return Status::OK();
    if (parts.size() != expect) {
      return Status::ParseError(
          StringPrintf("expected %zu values, found %zu", expect, parts.size()));
    }
    for (size_t i = 0; i < expect; ++i) {
      NLQ_ASSIGN_OR_RETURN((*out)[i], ParseDouble(parts[i]));
    }
    return Status::OK();
  };

  NLQ_RETURN_IF_ERROR(parse_list(sections[3], d, &stats.l_));
  NLQ_RETURN_IF_ERROR(parse_list(sections[4], d, &stats.min_));
  NLQ_RETURN_IF_ERROR(parse_list(sections[5], d, &stats.max_));

  const size_t num_q = stats.NumQEntries();
  std::vector<double> q_entries(num_q);
  NLQ_RETURN_IF_ERROR(parse_list(sections[6], num_q, &q_entries));
  size_t idx = 0;
  for (size_t a = 0; a < d; ++a) {
    switch (stats.kind_) {
      case MatrixKind::kDiagonal:
        stats.q_[a * d + a] = q_entries[idx++];
        break;
      case MatrixKind::kLowerTriangular:
        for (size_t b = 0; b <= a; ++b) stats.q_[a * d + b] = q_entries[idx++];
        break;
      case MatrixKind::kFull:
        for (size_t b = 0; b < d; ++b) stats.q_[a * d + b] = q_entries[idx++];
        break;
    }
  }
  return stats;
}

double SufStats::MaxAbsDiff(const SufStats& other) const {
  if (other.d_ != d_) return std::numeric_limits<double>::infinity();
  double max = std::fabs(n_ - other.n_);
  for (size_t a = 0; a < d_; ++a) {
    max = std::max(max, std::fabs(l_[a] - other.l_[a]));
  }
  for (size_t a = 0; a < d_; ++a) {
    for (size_t b = 0; b < d_; ++b) {
      max = std::max(max, std::fabs(Q(a, b) - other.Q(a, b)));
    }
  }
  return max;
}

}  // namespace nlq::stats
