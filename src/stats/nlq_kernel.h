#ifndef NLQ_STATS_NLQ_KERNEL_H_
#define NLQ_STATS_NLQ_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "stats/sufstats.h"
#include "storage/value.h"

namespace nlq::stats {

/// Maximum dimensionality one aggregate-UDF call handles. The UDF
/// state is statically sized (the paper: "the UDF 'struct' record is
/// statically defined to have a maximum dimensionality" because heap
/// storage is allocated before the first row). Higher d uses the
/// partitioned nlq_block calls (paper Table 6).
inline constexpr size_t kMaxUdfDims = 64;

/// The n, L, Q accumulation state shared by the row-path aggregate
/// UDFs (nlq_list / nlq_string) and the columnar fast path — one
/// definition so both paths provably run the same arithmetic (the
/// paper's UDF_nLQ_storage struct).
struct NlqState {
  int32_t d;     // -1 until the first row fixes the dimensionality
  int32_t kind;  // MatrixKind as int
  double n;
  double l[kMaxUdfDims];
  double mn[kMaxUdfDims];
  double mx[kMaxUdfDims];
  double q[kMaxUdfDims][kMaxUdfDims];
};

/// INIT: zeroes the state (d = -1, min/max at +/-inf).
void ResetNlqState(NlqState* s);

/// Fixes d and kind on the first row; InvalidArgument when d is
/// outside 1..kMaxUdfDims.
Status SetNlqShape(NlqState* s, size_t d, MatrixKind kind);

/// ROW: folds one complete (no-NULL) point into `s`. Requires the
/// shape to be fixed. This is the paper's hot loop ("step 2 is the
/// most intensive because it gets executed n times").
void NlqAccumulatePoint(NlqState* s, const double* x);

/// ROW, fused columnar form: folds `rows` dense points given as d
/// column spans (cols[a][r] is dimension a of row r; no NULLs — the
/// caller applies the skip-row policy by compaction upstream).
///
/// Two implementations sit behind runtime dispatch, both bit-identical
/// to `rows` NlqAccumulatePoint calls because every accumulator (each
/// l[a], q[a][b], mn/mx[a]) receives its row contributions as the same
/// strict sequential chain in row order:
///  - scalar: blocked (kRowBlock rows stay cache-resident across the Q
///    passes) and tiled (independent accumulator chains per inner loop
///    hide FP-add latency);
///  - avx2 (x86-64 with AVX2, lower-triangular/full kinds, d >= 4):
///    transposes each block to row-major and performs per-row rank-1
///    updates with lanes across *accumulators* (separate vector mul
///    then add — never FMA — and MINPD/MAXPD operand order chosen to
///    reproduce the scalar `if (v < mn)` semantics including NaN and
///    signed-zero cases).
void NlqAccumulateSpans(NlqState* s, const double* const* cols, size_t rows);

/// Kernel selection for NlqAccumulateSpans. kAuto (default) picks AVX2
/// when the CPU supports it; kScalar forces the blocked-scalar path
/// (the differential oracle); kSimd asks for AVX2 and silently falls
/// back to scalar where unsupported. Process-wide, for tests and
/// benchmarks; answers are bit-identical either way by construction.
enum class NlqKernelMode { kAuto = 0, kScalar = 1, kSimd = 2 };
void SetNlqKernelMode(NlqKernelMode mode);

/// The variant NlqAccumulateSpans resolves to right now: "avx2" or
/// "scalar".
const char* NlqKernelVariant();

/// MERGE: folds `src` into `dst`; empty src is a no-op.
Status NlqMergeStates(NlqState* dst, const NlqState* src);

/// FINALIZE: packs the state in SufStats::ToPackedString layout.
StatusOr<storage::Datum> NlqFinalizeState(const NlqState* s);

}  // namespace nlq::stats

#endif  // NLQ_STATS_NLQ_KERNEL_H_
