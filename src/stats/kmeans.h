#ifndef NLQ_STATS_KMEANS_H_
#define NLQ_STATS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// K-means clustering model (Section 3.1): centroids C (d x k),
/// per-dimension radii/variances R (diagonal, d x k) and weights W.
/// Stored row-per-cluster here for cache-friendly scoring.
struct KMeansModel {
  size_t d = 0;
  size_t k = 0;
  linalg::Matrix centroids;  // k x d; row j = C_j
  linalg::Matrix radii;      // k x d; row j = diag(R_j)
  linalg::Vector weights;    // k; W_j = N_j / n
  linalg::Vector counts;     // k; N_j

  /// 0-based index of the nearest centroid (squared Euclidean).
  size_t NearestCentroid(const double* x) const;
  size_t NearestCentroid(const linalg::Vector& x) const {
    return NearestCentroid(x.data());
  }

  /// Squared distance from x to centroid j.
  double SquaredDistanceTo(const double* x, size_t j) const;

  /// Total within-cluster squared error of the model over `points`.
  double SumSquaredError(const std::vector<linalg::Vector>& points) const;
};

struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 20;
  /// Stop when the max centroid movement (L2) drops below this.
  double tolerance = 1e-6;
  uint64_t seed = 42;
  /// Incremental mode: one pass over the data, assigning each point
  /// to the nearest centroid of the running model and updating that
  /// centroid online (the paper's "incremental versions that can get
  /// a good, but probably suboptimal, solution in ... one iteration").
  bool incremental = false;
};

/// In-memory K-means (Lloyd iterations over per-cluster sufficient
/// statistics: each iteration folds points into per-cluster
/// (N_j, L_j, Q_j diag) and recomputes C_j = L_j/N_j,
/// R_j = Q_j/N_j − C_j² — exactly the paper's GROUP BY computation).
StatusOr<KMeansModel> FitKMeans(const std::vector<linalg::Vector>& points,
                                const KMeansOptions& options);

/// Rebuilds (C_j, R_j, W_j) for one cluster from its diagonal
/// sufficient statistics; used by both the in-memory fit and the
/// DBMS-driven loop in miner.cc.
Status UpdateClusterFromStats(const SufStats& cluster_stats, double total_n,
                              size_t j, KMeansModel* model);

}  // namespace nlq::stats

#endif  // NLQ_STATS_KMEANS_H_
