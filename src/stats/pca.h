#ifndef NLQ_STATS_PCA_H_
#define NLQ_STATS_PCA_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// Which d x d matrix PCA decomposes (Section 3.1: "the correlation
/// matrix leaves dimensions in the same scale, whereas the covariance
/// matrix maintains dimensions in their original scale").
enum class PcaInput { kCorrelation, kCovariance };

/// Principal component analysis model: the d x k dimensionality-
/// reduction matrix Λ with orthonormal columns plus the centering
/// vector μ.
struct PcaModel {
  size_t d = 0;
  size_t k = 0;
  PcaInput input = PcaInput::kCorrelation;
  linalg::Vector mu;           // mean of X, used to center new points
  linalg::Vector sigma;        // per-dim stddev (correlation input only)
  linalg::Matrix lambda;       // d x k, column j = component j
  linalg::Vector eigenvalues;  // k leading eigenvalues (descending)
  double total_variance = 0.0; // Σ of all d eigenvalues

  /// Fraction of variance captured by the k components.
  double ExplainedVarianceRatio() const;

  /// x' = Λᵀ (x − μ) — the scoring equation of Section 3.5. For
  /// correlation-based PCA the centered vector is also scaled by 1/σ.
  linalg::Vector Score(const double* x) const;
  linalg::Vector Score(const linalg::Vector& x) const {
    return Score(x.data());
  }
};

/// Fits PCA with k components from sufficient statistics (kind must
/// be triangular or full; 1 <= k <= d).
StatusOr<PcaModel> FitPca(const SufStats& stats, size_t k,
                          PcaInput input = PcaInput::kCorrelation);

/// Factor analysis loadings derived from the PCA solution (principal-
/// factor method): loading(a, j) = Λ_aj sqrt(λ_j); communality of a
/// dimension is the row sum of squared loadings and the uniqueness is
/// its complement.
struct FactorAnalysisModel {
  size_t d = 0;
  size_t k = 0;
  linalg::Matrix loadings;        // d x k
  linalg::Vector communalities;   // d
  linalg::Vector uniquenesses;    // d (1 − communality, correlation scale)
};

StatusOr<FactorAnalysisModel> FitFactorAnalysis(const SufStats& stats,
                                                size_t k);

/// Maximum-likelihood factor analysis fitted with the EM algorithm the
/// paper cites for "ML factor analysis" (Section 3.1): the correlation
/// matrix ρ is modeled as Λ Λᵀ + Ψ with diagonal uniquenesses Ψ, and
/// EM alternates the posterior factor moments with closed-form Λ, Ψ
/// updates. Initialized from the principal-factor solution; converges
/// when the loadings stop moving.
StatusOr<FactorAnalysisModel> FitFactorAnalysisML(const SufStats& stats,
                                                  size_t k,
                                                  size_t max_iterations = 200,
                                                  double tolerance = 1e-8);

}  // namespace nlq::stats

#endif  // NLQ_STATS_PCA_H_
