#include "stats/miner.h"

#include <cmath>

#include "common/strings.h"
#include "stats/model_tables.h"
#include "stats/nlq_udaf.h"
#include "stats/naive_bayes.h"
#include "stats/scoring.h"

namespace nlq::stats {
namespace {

/// Builds the clusterscore(kmeansdistance(...), ...) expression over
/// aliased centroid-table copies C1..Ck.
std::string ClusterScoreExpr(const std::string& x_table, size_t d,
                             size_t k) {
  std::string expr = "clusterscore(";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) expr += ", ";
    expr += "kmeansdistance(";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) expr += ", ";
      expr += StringPrintf("%s.X%zu", x_table.c_str(), a);
    }
    for (size_t a = 1; a <= d; ++a) {
      expr += StringPrintf(", C%zu.X%zu", j, a);
    }
    expr += ")";
  }
  expr += ")";
  return expr;
}

}  // namespace

StatusOr<SufStats> WarehouseMiner::ComputeSufStats(
    const std::string& table, const std::vector<std::string>& columns,
    MatrixKind kind, ComputeVia via) {
  switch (via) {
    case ComputeVia::kSql: {
      NLQ_ASSIGN_OR_RETURN(engine::ResultSet result,
                           db_->Execute(NlqSqlQuery(table, columns, kind)));
      return SufStatsFromWideRow(result, 0, columns.size(), kind);
    }
    case ComputeVia::kUdfList:
    case ComputeVia::kUdfString: {
      const ParamStyle style = via == ComputeVia::kUdfList
                                   ? ParamStyle::kList
                                   : ParamStyle::kString;
      NLQ_ASSIGN_OR_RETURN(
          engine::ResultSet result,
          db_->Execute(NlqUdfQuery(table, columns, kind, style)));
      return SufStatsFromUdfResult(result);
    }
    case ComputeVia::kBlocks:
      if (kind != MatrixKind::kFull) {
        return Status::InvalidArgument(
            "block computation assembles a full matrix; pass kFull");
      }
      return ComputeViaBlocks(table, columns);
  }
  return Status::Internal("unhandled ComputeVia");
}

StatusOr<SufStats> WarehouseMiner::ComputeViaBlocks(
    const std::string& table, const std::vector<std::string>& columns) {
  NLQ_ASSIGN_OR_RETURN(
      engine::ResultSet result,
      db_->Execute(NlqBlockQuery(table, columns, kMaxUdfDims)));
  return SufStatsFromBlockResults(result, columns.size());
}

StatusOr<std::map<int64_t, SufStats>> WarehouseMiner::ComputeGroupedSufStats(
    const std::string& table, const std::vector<std::string>& columns,
    MatrixKind kind, ComputeVia via, const std::string& group_expr) {
  std::string sql;
  switch (via) {
    case ComputeVia::kSql:
      sql = NlqSqlQueryGrouped(table, columns, kind, group_expr);
      break;
    case ComputeVia::kUdfList:
      sql = NlqUdfQueryGrouped(table, columns, kind, ParamStyle::kList,
                               group_expr);
      break;
    case ComputeVia::kUdfString:
      sql = NlqUdfQueryGrouped(table, columns, kind, ParamStyle::kString,
                               group_expr);
      break;
    case ComputeVia::kBlocks:
      return Status::NotSupported("grouped block computation not supported");
  }
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet result, db_->Execute(sql));

  std::map<int64_t, SufStats> groups;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    const storage::Datum& key = result.At(r, 0);
    if (key.is_null()) {
      return Status::InvalidArgument("NULL group key in grouped statistics");
    }
    const int64_t group = static_cast<int64_t>(key.AsDouble());
    if (via == ComputeVia::kSql) {
      NLQ_ASSIGN_OR_RETURN(
          SufStats stats,
          SufStatsFromWideRow(result, r, columns.size(), kind,
                              /*first_col=*/1));
      groups.emplace(group, std::move(stats));
    } else {
      NLQ_ASSIGN_OR_RETURN(SufStats stats,
                           SufStatsFromUdfResult(result, r, /*col=*/1));
      groups.emplace(group, std::move(stats));
    }
  }
  return groups;
}

StatusOr<linalg::Matrix> WarehouseMiner::BuildCorrelation(
    const std::string& table, size_t d, ComputeVia via) {
  const MatrixKind kind = via == ComputeVia::kBlocks
                              ? MatrixKind::kFull
                              : MatrixKind::kLowerTriangular;
  NLQ_ASSIGN_OR_RETURN(
      SufStats stats,
      ComputeSufStats(table, DimensionColumns(d), kind, via));
  return stats.CorrelationMatrix();
}

StatusOr<LinearRegressionModel> WarehouseMiner::BuildLinearRegression(
    const std::string& table, const std::vector<std::string>& x_columns,
    const std::string& y_column, ComputeVia via) {
  std::vector<std::string> columns = x_columns;
  columns.push_back(y_column);
  const MatrixKind kind = via == ComputeVia::kBlocks
                              ? MatrixKind::kFull
                              : MatrixKind::kLowerTriangular;
  NLQ_ASSIGN_OR_RETURN(SufStats stats,
                       ComputeSufStats(table, columns, kind, via));
  return FitLinearRegression(stats);
}

StatusOr<PcaModel> WarehouseMiner::BuildPca(const std::string& table, size_t d,
                                            size_t k, ComputeVia via,
                                            PcaInput input) {
  const MatrixKind kind = via == ComputeVia::kBlocks
                              ? MatrixKind::kFull
                              : MatrixKind::kLowerTriangular;
  NLQ_ASSIGN_OR_RETURN(
      SufStats stats,
      ComputeSufStats(table, DimensionColumns(d), kind, via));
  return FitPca(stats, k, input);
}

StatusOr<KMeansModel> WarehouseMiner::BuildKMeansInDbms(
    const std::string& table, size_t d, const KMeansOptions& options) {
  const size_t k = options.k;
  if (k == 0) return Status::InvalidArgument("K-means needs k >= 1");

  // Seed centroids by sampling k spread-out rows via the id column.
  NLQ_ASSIGN_OR_RETURN(double n_rows,
                       db_->QueryDouble("SELECT count(*) FROM " + table));
  if (n_rows < static_cast<double>(k)) {
    return Status::InvalidArgument("fewer rows than clusters");
  }
  const int64_t step =
      std::max<int64_t>(1, static_cast<int64_t>(n_rows) / static_cast<int64_t>(k));
  std::string seed_sql = "SELECT ";
  for (size_t a = 1; a <= d; ++a) {
    if (a > 1) seed_sql += ", ";
    seed_sql += StringPrintf("X%zu", a);
  }
  seed_sql += " FROM " + table +
              StringPrintf(" WHERE i %% %lld = 0 ORDER BY X1 LIMIT %zu",
                           static_cast<long long>(step), k);
  NLQ_ASSIGN_OR_RETURN(engine::ResultSet seeds, db_->Execute(seed_sql));
  if (seeds.num_rows() < k) {
    return Status::Internal("could not sample enough seed centroids");
  }

  KMeansModel model;
  model.d = d;
  model.k = k;
  model.centroids = linalg::Matrix(k, d);
  model.radii = linalg::Matrix(k, d);
  model.weights.assign(k, 0.0);
  model.counts.assign(k, 0.0);
  for (size_t j = 0; j < k; ++j) {
    for (size_t a = 0; a < d; ++a) {
      model.centroids(j, a) = seeds.GetDouble(j, a);
    }
  }

  const std::string c_table = table + "_KMC";
  const std::string r_table = table + "_KMR";
  const std::string w_table = table + "_KMW";
  const std::string score_expr = ClusterScoreExpr(table, d, k);

  // Per-iteration single-scan GROUP BY query (paper Section 4.2,
  // "this query can be used to compute k clusters if the nearest
  // centroid is available").
  std::string iter_sql = "SELECT " + score_expr + " AS j, ";
  iter_sql += "nlq_list('diag'";
  for (size_t a = 1; a <= d; ++a) {
    iter_sql += StringPrintf(", %s.X%zu", table.c_str(), a);
  }
  iter_sql += ") AS nlq FROM " + table;
  for (size_t j = 1; j <= k; ++j) {
    iter_sql += StringPrintf(", %s C%zu", c_table.c_str(), j);
  }
  iter_sql += " WHERE ";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) iter_sql += " AND ";
    iter_sql += StringPrintf("C%zu.j = %zu", j, j);
  }
  iter_sql += " GROUP BY " + score_expr;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    NLQ_RETURN_IF_ERROR(
        StoreClusterTables(db_, c_table, r_table, w_table, model));
    NLQ_ASSIGN_OR_RETURN(engine::ResultSet result, db_->Execute(iter_sql));

    linalg::Matrix old_centroids = model.centroids;
    double total_n = 0.0;
    std::vector<SufStats> per_cluster(k, SufStats(d, MatrixKind::kDiagonal));
    std::vector<bool> seen(k, false);
    for (size_t r = 0; r < result.num_rows(); ++r) {
      const int64_t j = static_cast<int64_t>(result.At(r, 0).AsDouble());
      if (j < 1 || j > static_cast<int64_t>(k)) {
        return Status::Internal("clusterscore returned an invalid index");
      }
      NLQ_ASSIGN_OR_RETURN(SufStats stats,
                           SufStatsFromUdfResult(result, r, /*col=*/1));
      total_n += stats.n();
      per_cluster[static_cast<size_t>(j - 1)] = std::move(stats);
      seen[static_cast<size_t>(j - 1)] = true;
    }
    for (size_t j = 0; j < k; ++j) {
      if (!seen[j]) continue;  // empty cluster keeps its centroid
      NLQ_RETURN_IF_ERROR(
          UpdateClusterFromStats(per_cluster[j], total_n, j, &model));
    }

    double max_move = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double move = 0.0;
      for (size_t a = 0; a < d; ++a) {
        const double diff = model.centroids(j, a) - old_centroids(j, a);
        move += diff * diff;
      }
      max_move = std::max(max_move, std::sqrt(move));
    }
    if (max_move < options.tolerance) break;
  }

  // Refresh the persisted model tables with the final state.
  NLQ_RETURN_IF_ERROR(
      StoreClusterTables(db_, c_table, r_table, w_table, model));
  return model;
}


StatusOr<GaussianMixtureModel> WarehouseMiner::BuildGaussianMixtureInDbms(
    const std::string& table, size_t d, const EmOptions& options) {
  const size_t k = options.k;
  if (k == 0) return Status::InvalidArgument("EM needs k >= 1");

  // Initialize from a short in-DBMS K-means run.
  KMeansOptions km;
  km.k = k;
  km.max_iterations = 2;
  NLQ_ASSIGN_OR_RETURN(KMeansModel seed, BuildKMeansInDbms(table, d, km));
  GaussianMixtureModel model = MixtureFromKMeans(seed, options.min_variance);
  for (size_t j = 0; j < k; ++j) {
    for (size_t a = 0; a < d; ++a) {
      if (model.variances(j, a) <= options.min_variance) {
        model.variances(j, a) = 1.0;
      }
    }
  }

  const std::string nb_table = table + "_EMP";  // (j, prior, M.., V..)

  // Per-iteration single-scan query: assignment by minimum
  // gaussnll - ln(prior), grouped diagonal statistics per component.
  std::string assign_expr = "clusterscore(";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) assign_expr += ", ";
    assign_expr += "gaussnll(";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) assign_expr += ", ";
      assign_expr += StringPrintf("%s.X%zu", table.c_str(), a);
    }
    for (size_t a = 1; a <= d; ++a) {
      assign_expr += StringPrintf(", N%zu.M%zu", j, a);
    }
    for (size_t a = 1; a <= d; ++a) {
      assign_expr += StringPrintf(", N%zu.V%zu", j, a);
    }
    assign_expr += StringPrintf(") - ln(N%zu.prior)", j);
  }
  assign_expr += ")";

  std::string iter_sql = "SELECT " + assign_expr + " AS j, nlq_list('diag'";
  for (size_t a = 1; a <= d; ++a) {
    iter_sql += StringPrintf(", %s.X%zu", table.c_str(), a);
  }
  iter_sql += ") AS nlq FROM " + table;
  for (size_t j = 1; j <= k; ++j) {
    iter_sql += StringPrintf(", %s N%zu", nb_table.c_str(), j);
  }
  iter_sql += " WHERE ";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) iter_sql += " AND ";
    iter_sql += StringPrintf("N%zu.j = %zu", j, j);
  }
  iter_sql += " GROUP BY " + assign_expr;

  auto store_params = [&]() -> Status {
    NaiveBayesModel params;
    params.d = d;
    params.k = k;
    params.priors = model.weights;
    params.means = model.means;
    params.variances = model.variances;
    for (size_t j = 0; j < k; ++j) {
      params.class_labels.push_back(static_cast<int64_t>(j + 1));
      // Dead components would make ln(prior) blow up; floor them.
      params.priors[j] = std::max(params.priors[j], 1e-6);
    }
    return StoreNaiveBayesTable(db_, nb_table, params);
  };

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    NLQ_RETURN_IF_ERROR(store_params());
    NLQ_ASSIGN_OR_RETURN(engine::ResultSet result, db_->Execute(iter_sql));

    linalg::Matrix old_means = model.means;
    double total_n = 0.0;
    std::vector<SufStats> per_component(k,
                                        SufStats(d, MatrixKind::kDiagonal));
    std::vector<bool> seen(k, false);
    for (size_t r = 0; r < result.num_rows(); ++r) {
      const int64_t j = static_cast<int64_t>(result.At(r, 0).AsDouble());
      if (j < 1 || j > static_cast<int64_t>(k)) {
        return Status::Internal("EM assignment returned an invalid index");
      }
      NLQ_ASSIGN_OR_RETURN(SufStats stats,
                           SufStatsFromUdfResult(result, r, /*col=*/1));
      total_n += stats.n();
      per_component[static_cast<size_t>(j - 1)] = std::move(stats);
      seen[static_cast<size_t>(j - 1)] = true;
    }
    for (size_t j = 0; j < k; ++j) {
      if (!seen[j] || per_component[j].n() <= 0.0) {
        model.weights[j] = 0.0;
        continue;  // dead component keeps its parameters
      }
      const double nj = per_component[j].n();
      model.weights[j] = total_n > 0.0 ? nj / total_n : 0.0;
      for (size_t a = 0; a < d; ++a) {
        const double mean = per_component[j].L(a) / nj;
        model.means(j, a) = mean;
        model.variances(j, a) =
            std::max(options.min_variance,
                     per_component[j].Q(a, a) / nj - mean * mean);
      }
    }
    model.iterations_run = iter + 1;

    double max_move = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double move = 0.0;
      for (size_t a = 0; a < d; ++a) {
        const double diff = model.means(j, a) - old_means(j, a);
        move += diff * diff;
      }
      max_move = std::max(max_move, std::sqrt(move));
    }
    if (max_move < options.tolerance) break;
  }
  NLQ_RETURN_IF_ERROR(store_params());
  return model;
}

Status WarehouseMiner::ScoreLinearRegression(
    const std::string& x_table, const LinearRegressionModel& model,
    const std::string& out_table, bool use_udf) {
  const std::string beta_table = x_table + "_BETA";
  NLQ_RETURN_IF_ERROR(StoreBetaTable(db_, beta_table, model));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db_, out_table));
  const std::string select =
      use_udf ? LinRegScoreUdfQuery(x_table, beta_table, model.d)
              : LinRegScoreSqlQuery(x_table, beta_table, model.d);
  return db_->ExecuteCommand("CREATE TABLE " + out_table + " AS " + select);
}

Status WarehouseMiner::ScorePca(const std::string& x_table,
                                const PcaModel& model,
                                const std::string& out_table, bool use_udf) {
  const std::string mu_table = x_table + "_MU";
  const std::string lambda_table = x_table + "_LAMBDA";
  NLQ_RETURN_IF_ERROR(StorePcaTables(db_, mu_table, lambda_table, model));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db_, out_table));
  const std::string select =
      use_udf
          ? PcaScoreUdfQuery(x_table, mu_table, lambda_table, model.d, model.k)
          : PcaScoreSqlQuery(x_table, mu_table, lambda_table, model.d,
                             model.k);
  return db_->ExecuteCommand("CREATE TABLE " + out_table + " AS " + select);
}

Status WarehouseMiner::ScoreKMeans(const std::string& x_table,
                                   const KMeansModel& model,
                                   const std::string& out_table,
                                   bool use_udf) {
  const std::string c_table = x_table + "_C";
  const std::string r_table = x_table + "_R";
  const std::string w_table = x_table + "_W";
  NLQ_RETURN_IF_ERROR(
      StoreClusterTables(db_, c_table, r_table, w_table, model));
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db_, out_table));
  if (use_udf) {
    // Single scan: distances and argmin in one statement.
    return db_->ExecuteCommand(
        "CREATE TABLE " + out_table + " AS " +
        KMeansScoreUdfQuery(x_table, c_table, model.d, model.k));
  }
  // SQL needs two scans: materialize distances, then CASE-pick argmin.
  const std::string dist_table = out_table + "_DIST";
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db_, dist_table));
  NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(
      "CREATE TABLE " + dist_table + " AS " +
      KMeansDistancesSqlQuery(x_table, c_table, model.d, model.k)));
  return db_->ExecuteCommand("CREATE TABLE " + out_table + " AS " +
                             KMeansAssignSqlQuery(dist_table, model.k));
}

}  // namespace nlq::stats
