#ifndef NLQ_STATS_SCORING_H_
#define NLQ_STATS_SCORING_H_

#include <string>

#include "common/status.h"
#include "udf/udf.h"

namespace nlq::stats {

/// Registers the scalar UDFs of Section 3.5 plus the packing helper:
///
///   pack_point(X1, ..., Xd) -> VARCHAR
///     Packs a point as "x1;x2;...;xd" — the per-row number-to-string
///     conversion cost of the string parameter-passing style.
///
///   linearregscore(X1..Xd, b0, b1..bd) -> DOUBLE
///     ŷ = β₀ + βᵀx (vector dot product; 2d+1 arguments).
///
///   fascore(X1..Xd, mu1..mud, l1j..ldj) -> DOUBLE
///     jth coordinate of the reduced vector Λⱼᵀ (x − μ); called k
///     times in one SELECT since UDFs cannot return vectors.
///
///   kmeansdistance(X1..Xd, c1j..cdj) -> DOUBLE
///     Squared Euclidean distance (x − Cⱼ)ᵀ(x − Cⱼ).
///
///   clusterscore(d1, ..., dk) -> BIGINT
///     Subscript J (1-based) of the minimum distance.
Status RegisterScoringUdfs(udf::UdfRegistry* registry);

/// Registers every stats UDF (aggregate nlq_* + scoring scalars).
Status RegisterAllStatsUdfs(udf::UdfRegistry* registry);

// ---------------------------------------------------------------------------
// Scoring query generation (Section 3.5). Each generator returns a
// bare SELECT that scores every row of `x_table` in one scan; callers
// materialize with "CREATE TABLE ... AS <select>" when the scored
// output should be written back. The *Sql variants evaluate the model
// equation with interpreted SQL arithmetic (the Table 4 comparison);
// the *Udf variants call the compiled scalar UDFs.
// ---------------------------------------------------------------------------

/// Model table layouts (see model_tables.h for writers):
///   BETA(b0, b1..bd)        — one row
///   MU(X1..Xd)              — one row
///   LAMBDA(j, X1..Xd)       — k rows, row j = component j
///   C(j, X1..Xd)            — k centroid rows
std::string LinRegScoreUdfQuery(const std::string& x_table,
                                const std::string& beta_table, size_t d,
                                const std::string& id_column = "i");

std::string LinRegScoreSqlQuery(const std::string& x_table,
                                const std::string& beta_table, size_t d,
                                const std::string& id_column = "i");

std::string PcaScoreUdfQuery(const std::string& x_table,
                             const std::string& mu_table,
                             const std::string& lambda_table, size_t d,
                             size_t k, const std::string& id_column = "i");

std::string PcaScoreSqlQuery(const std::string& x_table,
                             const std::string& mu_table,
                             const std::string& lambda_table, size_t d,
                             size_t k, const std::string& id_column = "i");

std::string KMeansScoreUdfQuery(const std::string& x_table,
                                const std::string& c_table, size_t d, size_t k,
                                const std::string& id_column = "i");

/// SQL clustering needs two scans (paper Table 4): first materialize
/// the k distances, then pick the argmin with a CASE expression.
std::string KMeansDistancesSqlQuery(const std::string& x_table,
                                    const std::string& c_table, size_t d,
                                    size_t k,
                                    const std::string& id_column = "i");
std::string KMeansAssignSqlQuery(const std::string& distances_table, size_t k,
                                 const std::string& id_column = "i");

}  // namespace nlq::stats

#endif  // NLQ_STATS_SCORING_H_
