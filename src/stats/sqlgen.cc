#include "stats/sqlgen.h"

#include "common/strings.h"
#include "stats/nlq_udaf.h"

namespace nlq::stats {
namespace {

void AppendQTerms(const std::vector<std::string>& cols, MatrixKind kind,
                  std::string* sql) {
  const size_t d = cols.size();
  for (size_t a = 0; a < d; ++a) {
    switch (kind) {
      case MatrixKind::kDiagonal:
        *sql += StringPrintf(", sum(%s * %s) AS Q%zu_%zu", cols[a].c_str(),
                             cols[a].c_str(), a + 1, a + 1);
        break;
      case MatrixKind::kLowerTriangular:
        for (size_t b = 0; b <= a; ++b) {
          *sql += StringPrintf(", sum(%s * %s) AS Q%zu_%zu", cols[a].c_str(),
                               cols[b].c_str(), a + 1, b + 1);
        }
        break;
      case MatrixKind::kFull:
        for (size_t b = 0; b < d; ++b) {
          *sql += StringPrintf(", sum(%s * %s) AS Q%zu_%zu", cols[a].c_str(),
                               cols[b].c_str(), a + 1, b + 1);
        }
        break;
    }
  }
}

std::string UdfCall(const std::vector<std::string>& cols, MatrixKind kind,
                    ParamStyle style) {
  std::string call;
  if (style == ParamStyle::kList) {
    call = StringPrintf("nlq_list('%s'", MatrixKindName(kind));
    for (const auto& c : cols) {
      call += ", ";
      call += c;
    }
    call += ")";
  } else {
    call = StringPrintf("nlq_string('%s', pack_point(", MatrixKindName(kind));
    for (size_t a = 0; a < cols.size(); ++a) {
      if (a > 0) call += ", ";
      call += cols[a];
    }
    call += "))";
  }
  return call;
}

}  // namespace

std::vector<std::string> DimensionColumns(size_t d) {
  std::vector<std::string> cols;
  cols.reserve(d);
  for (size_t a = 1; a <= d; ++a) cols.push_back("X" + std::to_string(a));
  return cols;
}

std::string NlqSqlQuery(const std::string& table,
                        const std::vector<std::string>& columns,
                        MatrixKind kind) {
  std::string sql = "SELECT sum(1.0) AS n";
  for (size_t a = 0; a < columns.size(); ++a) {
    sql += StringPrintf(", sum(%s) AS L%zu", columns[a].c_str(), a + 1);
  }
  AppendQTerms(columns, kind, &sql);
  sql += " FROM " + table;
  return sql;
}

std::string NlqSqlQueryGrouped(const std::string& table,
                               const std::vector<std::string>& columns,
                               MatrixKind kind,
                               const std::string& group_expr) {
  std::string sql = "SELECT " + group_expr + " AS grp, sum(1.0) AS n";
  for (size_t a = 0; a < columns.size(); ++a) {
    sql += StringPrintf(", sum(%s) AS L%zu", columns[a].c_str(), a + 1);
  }
  AppendQTerms(columns, kind, &sql);
  sql += " FROM " + table + " GROUP BY " + group_expr + " ORDER BY 1";
  return sql;
}

std::string NlqUdfQuery(const std::string& table,
                        const std::vector<std::string>& columns,
                        MatrixKind kind, ParamStyle style) {
  return "SELECT " + UdfCall(columns, kind, style) + " AS nlq FROM " + table;
}

std::string NlqUdfQueryGrouped(const std::string& table,
                               const std::vector<std::string>& columns,
                               MatrixKind kind, ParamStyle style,
                               const std::string& group_expr) {
  return "SELECT " + group_expr + " AS grp, " + UdfCall(columns, kind, style) +
         " AS nlq FROM " + table + " GROUP BY " + group_expr + " ORDER BY 1";
}

std::string NlqBlockQuery(const std::string& table,
                          const std::vector<std::string>& columns,
                          size_t block_dims) {
  const size_t d = columns.size();
  if (block_dims == 0 || block_dims > kMaxUdfDims) block_dims = kMaxUdfDims;
  std::string sql = "SELECT ";
  bool first = true;
  size_t call_index = 0;
  // Lower-triangular set of blocks (diagonal + below); the assembler
  // mirrors off-diagonal blocks.
  for (size_t a_lo = 1; a_lo <= d; a_lo += block_dims) {
    const size_t a_hi = std::min(d, a_lo + block_dims - 1);
    for (size_t b_lo = 1; b_lo <= a_lo; b_lo += block_dims) {
      const size_t b_hi = std::min(d, b_lo + block_dims - 1);
      if (!first) sql += ", ";
      first = false;
      sql += StringPrintf("nlq_block(%zu, %zu, %zu, %zu", a_lo, a_hi, b_lo,
                          b_hi);
      for (size_t a = a_lo; a <= a_hi; ++a) {
        sql += ", ";
        sql += columns[a - 1];
      }
      for (size_t b = b_lo; b <= b_hi; ++b) {
        sql += ", ";
        sql += columns[b - 1];
      }
      sql += StringPrintf(") AS blk%zu", call_index++);
    }
  }
  sql += " FROM " + table;
  return sql;
}

StatusOr<SufStats> SufStatsFromWideRow(const engine::ResultSet& result,
                                       size_t row, size_t d, MatrixKind kind,
                                       size_t first_col) {
  SufStats stats(d, kind);
  if (row >= result.num_rows()) {
    return Status::InvalidArgument("result row index out of range");
  }
  size_t col = first_col;
  const size_t expected = 1 + d + stats.NumQEntries();
  if (result.num_columns() < first_col + expected) {
    return Status::InvalidArgument(StringPrintf(
        "wide result has %zu columns, need %zu", result.num_columns(),
        first_col + expected));
  }
  stats.AddToN(result.GetDouble(row, col++));
  for (size_t a = 0; a < d; ++a) stats.AddToL(a, result.GetDouble(row, col++));
  for (size_t a = 0; a < d; ++a) {
    switch (kind) {
      case MatrixKind::kDiagonal:
        stats.AddToQ(a, a, result.GetDouble(row, col++));
        break;
      case MatrixKind::kLowerTriangular:
        for (size_t b = 0; b <= a; ++b) {
          stats.AddToQ(a, b, result.GetDouble(row, col++));
        }
        break;
      case MatrixKind::kFull:
        for (size_t b = 0; b < d; ++b) {
          stats.AddToQ(a, b, result.GetDouble(row, col++));
        }
        break;
    }
  }
  return stats;
}

StatusOr<SufStats> SufStatsFromUdfResult(const engine::ResultSet& result,
                                         size_t row, size_t col) {
  if (row >= result.num_rows() || col >= result.num_columns()) {
    return Status::InvalidArgument("UDF result index out of range");
  }
  const storage::Datum& value = result.At(row, col);
  if (value.is_null() || value.type() != storage::DataType::kVarchar) {
    return Status::InvalidArgument("UDF result is not a packed VARCHAR");
  }
  return SufStats::FromPackedString(value.string_value());
}

StatusOr<SufStats> SufStatsFromBlockResults(const engine::ResultSet& result,
                                            size_t d) {
  if (result.num_rows() != 1) {
    return Status::InvalidArgument("block query must return one row");
  }
  SufStats stats(d, MatrixKind::kFull);
  for (size_t c = 0; c < result.num_columns(); ++c) {
    const storage::Datum& value = result.At(0, c);
    if (value.is_null() || value.type() != storage::DataType::kVarchar) {
      return Status::InvalidArgument("block result is not a packed VARCHAR");
    }
    NLQ_ASSIGN_OR_RETURN(NlqBlock block, ParseNlqBlock(value.string_value()));
    NLQ_RETURN_IF_ERROR(MergeBlockIntoSufStats(block, &stats));
  }
  return stats;
}

}  // namespace nlq::stats
