#ifndef NLQ_STATS_HISTOGRAM_H_
#define NLQ_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/sufstats.h"
#include "udf/udf.h"

namespace nlq::stats {

/// Maximum bins one histogram UDF state holds (fits the 64 KB heap
/// segment with room to spare).
inline constexpr size_t kMaxHistogramBins = 1024;

/// An equi-width histogram decoded from the hist() aggregate UDF.
/// The paper notes the nlq UDF "also computes the minimum and maximum
/// for each dimension, which can be used to detect outliers or build
/// histograms" — this module is that follow-through: one nlq pass
/// yields the ranges, a second pass bins each dimension.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  size_t bins = 0;
  std::vector<uint64_t> counts;  // bins entries
  uint64_t below = 0;            // x < lo
  uint64_t above = 0;            // x >= hi

  double BinWidth() const {
    return bins == 0 ? 0.0 : (hi - lo) / static_cast<double>(bins);
  }
  uint64_t TotalCount() const;

  /// Bin index for a value inside [lo, hi); callers must range-check.
  size_t BinFor(double x) const;

  /// Parses the packed VARCHAR produced by the hist() UDF:
  ///   "lo|hi|bins|c0;c1;...|below|above"
  static StatusOr<Histogram> FromPackedString(std::string_view packed);
};

/// Registers the histogram aggregate UDF and the outlier scalar UDF:
///
///   hist(x, lo, hi, bins) -> VARCHAR
///     Equi-width histogram of x over [lo, hi) with `bins` buckets;
///     out-of-range values are tallied in below/above. lo, hi and
///     bins must be constant across rows (first row fixes them).
///
///   zscore(x, mu, sigma) -> DOUBLE
///     |x - mu| / sigma; with mu, sigma from the nlq statistics this
///     scores outliers in one scan.
Status RegisterHistogramUdfs(udf::UdfRegistry* registry);

/// Builds the hist() call SQL for dimension column `column` using the
/// min/max tracked by `stats` for dimension index `dim` (slightly
/// widened so the max lands inside the last bin).
std::string HistogramQuery(const std::string& table,
                           const std::string& column, const SufStats& stats,
                           size_t dim, size_t bins);

}  // namespace nlq::stats

#endif  // NLQ_STATS_HISTOGRAM_H_
