#ifndef NLQ_STATS_SUFSTATS_H_
#define NLQ_STATS_SUFSTATS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace nlq::stats {

/// Which entries of Q are maintained (Section 3.4 of the paper):
/// diagonal for clustering, lower-triangular (default) for
/// correlation / PCA / regression exploiting symmetry, full for
/// querying / visualization.
enum class MatrixKind {
  kDiagonal = 0,
  kLowerTriangular = 1,
  kFull = 2,
};

/// Parses "diag" / "triang" / "full" (case-insensitive).
StatusOr<MatrixKind> MatrixKindFromString(std::string_view s);
const char* MatrixKindName(MatrixKind kind);

/// The paper's sufficient statistics for linear models over a
/// d-dimensional data set X:
///   n — row count,
///   L = Σ xᵢ — linear sum of points (d-vector),
///   Q = Σ xᵢ xᵢᵀ — quadratic sum of cross-products (d x d),
/// plus per-dimension min/max (the aggregate UDF also tracks these for
/// outlier detection / histograms).
///
/// Everything a linear model needs — the correlation matrix ρ, the
/// covariance matrix V, regression normal equations — derives from
/// (n, L, Q) without revisiting X.
class SufStats {
 public:
  SufStats() : d_(0), kind_(MatrixKind::kLowerTriangular) {}
  SufStats(size_t d, MatrixKind kind);

  size_t d() const { return d_; }
  MatrixKind kind() const { return kind_; }
  double n() const { return n_; }

  /// Folds one point (array of d doubles) into the statistics.
  void Update(const double* x);
  void Update(const std::vector<double>& x) { Update(x.data()); }

  /// Folds another partial SufStats (same d and kind) into this one.
  /// This is the aggregate-UDF Merge phase.
  Status Merge(const SufStats& other);

  /// Removes one previously-folded point. Because (n, L, Q) are plain
  /// sums, deletions maintain models incrementally without rescanning
  /// X — min/max are NOT maintained under deletion (they are hints,
  /// not sums) and become stale.
  void Downdate(const double* x);
  void Downdate(const std::vector<double>& x) { Downdate(x.data()); }

  /// Removes a previously-merged partial (same d and kind); the
  /// decomposability property behind incremental view maintenance of
  /// statistical models. min/max become stale, as with Downdate.
  Status Subtract(const SufStats& other);

  /// L_a, 0-based subscript.
  double L(size_t a) const { return l_[a]; }

  /// Q_ab, 0-based; symmetric access for the triangular kind. For the
  /// diagonal kind off-diagonal entries were never computed and read
  /// as 0.
  double Q(size_t a, size_t b) const {
    if (kind_ == MatrixKind::kDiagonal) return a == b ? q_[a * d_ + a] : 0.0;
    if (kind_ == MatrixKind::kLowerTriangular && b > a) {
      return q_[b * d_ + a];
    }
    return q_[a * d_ + b];
  }

  double Min(size_t a) const { return min_[a]; }
  double Max(size_t a) const { return max_[a]; }

  /// Mean vector μ = L / n (zero vector when n == 0).
  linalg::Vector Mean() const;

  /// Covariance matrix V = Q/n − L Lᵀ/n² (Section 3.2). Requires a
  /// non-diagonal kind and n > 0.
  StatusOr<linalg::Matrix> CovarianceMatrix() const;

  /// Correlation matrix ρ_ab = (n Q_ab − L_a L_b) /
  /// (sqrt(n Q_aa − L_a²) sqrt(n Q_bb − L_b²)). Requires a
  /// non-diagonal kind, n > 1 and non-constant dimensions.
  StatusOr<linalg::Matrix> CorrelationMatrix() const;

  /// Q as a full symmetric matrix (diagonal kind yields a diagonal
  /// matrix).
  linalg::Matrix QMatrix() const;

  /// Number of Q entries maintained for this (d, kind).
  size_t NumQEntries() const;

  /// Serializes to the packed text form the aggregate UDF returns
  /// ("UDFs can only return one value of a simple data type"):
  ///   d|kind|n|L₁;…;L_d|min…|max…|Q entries (kind-dependent count)
  std::string ToPackedString() const;

  /// Parses the packed form back.
  static StatusOr<SufStats> FromPackedString(std::string_view packed);

  /// Max |difference| across n, L and maintained Q entries — used by
  /// equivalence tests between the SQL, UDF and external-C++ paths.
  double MaxAbsDiff(const SufStats& other) const;

  /// Direct accumulation mutators. These exist for assembling
  /// statistics from partial results (wide SQL result rows, nlq_block
  /// pieces) rather than from raw points; min/max are not tracked on
  /// this path.
  void AddToN(double v) { n_ += v; }
  void AddToL(size_t a, double v) { l_[a] += v; }
  void AddToQ(size_t a, size_t b, double v) { q_[a * d_ + b] += v; }
  void SetMinMax(size_t a, double mn, double mx) {
    min_[a] = mn;
    max_[a] = mx;
  }

 private:
  size_t d_;
  MatrixKind kind_;
  double n_ = 0.0;
  std::vector<double> l_;
  std::vector<double> q_;  // d*d storage; valid entries depend on kind
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace nlq::stats

#endif  // NLQ_STATS_SUFSTATS_H_
