#ifndef NLQ_STATS_STEPWISE_H_
#define NLQ_STATS_STEPWISE_H_

#include <vector>

#include "common/status.h"
#include "stats/linreg.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// Fits Y on the given predictor subset using ONLY the full model's
/// sufficient statistics: the subset's normal equations are a
/// submatrix of Q' and a subvector of L, so no rescan of X is needed.
/// This is the machinery behind the paper's "step-wise procedures for
/// linear regression ... reduce d to some lower dimensionality d'".
///
/// `stats` covers (X1..Xd, Y) as in FitLinearRegression;
/// `predictors` holds 0-based dimension indices into X1..Xd (must be
/// distinct, non-empty, and exclude the Y dimension). The returned
/// model's beta has 1 + |predictors| entries in `predictors` order.
StatusOr<LinearRegressionModel> FitLinearRegressionSubset(
    const SufStats& stats, const std::vector<size_t>& predictors);

struct StepwiseOptions {
  /// Stop after this many predictors (0 = up to d).
  size_t max_predictors = 0;
  /// Stop when the best remaining candidate improves R² by less.
  double min_r2_gain = 1e-4;
};

struct StepwiseResult {
  std::vector<size_t> selected;        // chosen predictors, in order
  std::vector<double> r2_path;         // R² after each addition
  LinearRegressionModel model;         // final subset model
};

/// Greedy forward selection: starting empty, repeatedly adds the
/// predictor with the largest R² gain. Every candidate fit reuses the
/// same (n, L, Q') — the whole search costs zero additional scans of
/// the data, the paper's motivation for keeping Q' around.
StatusOr<StepwiseResult> ForwardStepwiseRegression(
    const SufStats& stats, const StepwiseOptions& options = {});

/// Cheap filter alternative to stepwise: predictors ranked by
/// |corr(Xa, Y)| descending, straight off the correlation matrix.
/// Returns (0-based predictor index, |ρ|) pairs.
StatusOr<std::vector<std::pair<size_t, double>>> RankPredictorsByCorrelation(
    const SufStats& stats);

}  // namespace nlq::stats

#endif  // NLQ_STATS_STEPWISE_H_
