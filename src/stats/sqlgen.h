#ifndef NLQ_STATS_SQLGEN_H_
#define NLQ_STATS_SQLGEN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/result_set.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// How a point is passed to the aggregate UDF (paper Figure 3).
enum class ParamStyle {
  kList,    // nlq_list('kind', X1, ..., Xd)
  kString,  // nlq_string('kind', pack_point(X1, ..., Xd))
};

/// Generates the paper's single "long" SQL query computing n, L and Q
/// in one scan with 1 + d + |Q| SUM terms (Section 3.4):
///   SELECT sum(1.0) AS n, sum(X1) AS L1, ..., sum(X2*X1) AS Q2_1, ...
///   FROM table
/// `columns` are the dimension columns (e.g. {"X1",...,"Xd"} or
/// {"X1",...,"Xd","Y"} for regression). The Q term list follows
/// `kind` (diagonal / lower-triangular / full).
std::string NlqSqlQuery(const std::string& table,
                        const std::vector<std::string>& columns,
                        MatrixKind kind);

/// GROUP BY variant: one (n, L, Q) set per group. `group_expr` is any
/// SQL expression (e.g. "j" or "i % 16"); it is aliased as grp.
std::string NlqSqlQueryGrouped(const std::string& table,
                               const std::vector<std::string>& columns,
                               MatrixKind kind,
                               const std::string& group_expr);

/// Generates the aggregate-UDF query computing the same statistics:
///   SELECT nlq_list('kind', X1, ..., Xd) FROM table   (list style)
///   SELECT nlq_string('kind', pack_point(X1, ..., Xd)) FROM table
std::string NlqUdfQuery(const std::string& table,
                        const std::vector<std::string>& columns,
                        MatrixKind kind, ParamStyle style);

/// GROUP BY variant of the UDF query.
std::string NlqUdfQueryGrouped(const std::string& table,
                               const std::vector<std::string>& columns,
                               MatrixKind kind, ParamStyle style,
                               const std::string& group_expr);

/// Generates the partitioned nlq_block calls covering a d-dimensional
/// data set with blocks of side `block_dims` (paper Table 6): one
/// SELECT whose items are nlq_block(...) calls for every diagonal and
/// lower off-diagonal block pair.
std::string NlqBlockQuery(const std::string& table,
                          const std::vector<std::string>& columns,
                          size_t block_dims);

/// Decodes the wide one-row result of NlqSqlQuery back into SufStats.
/// `row` selects the result row (0 unless grouped); for grouped
/// queries the first result column is the group key, so pass
/// `first_col = 1`.
StatusOr<SufStats> SufStatsFromWideRow(const engine::ResultSet& result,
                                       size_t row, size_t d, MatrixKind kind,
                                       size_t first_col = 0);

/// Decodes the packed-string result of NlqUdfQuery.
StatusOr<SufStats> SufStatsFromUdfResult(const engine::ResultSet& result,
                                         size_t row = 0, size_t col = 0);

/// Decodes and assembles all nlq_block results of NlqBlockQuery into a
/// full-kind SufStats of dimensionality `d`.
StatusOr<SufStats> SufStatsFromBlockResults(const engine::ResultSet& result,
                                            size_t d);

/// Default dimension column names X1..Xd.
std::vector<std::string> DimensionColumns(size_t d);

}  // namespace nlq::stats

#endif  // NLQ_STATS_SQLGEN_H_
