#ifndef NLQ_STATS_DESCRIBE_H_
#define NLQ_STATS_DESCRIBE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// Per-dimension descriptive statistics — everything here falls out
/// of the one-scan summary (n, L, Q-diagonal, min, max), the paper's
/// observation that the sufficient statistics "summarize a lot of
/// properties about X".
struct DimensionSummary {
  double mean = 0.0;
  double variance = 0.0;  // population variance Q_aa/n − mean²
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One summary per dimension. Requires n > 0.
StatusOr<std::vector<DimensionSummary>> Describe(const SufStats& stats);

/// Formatted table (one row per dimension). `names` may be empty, in
/// which case X1..Xd is used; otherwise it must have d entries.
StatusOr<std::string> DescribeTable(const SufStats& stats,
                                    const std::vector<std::string>& names = {});

}  // namespace nlq::stats

#endif  // NLQ_STATS_DESCRIBE_H_
