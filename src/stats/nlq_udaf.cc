#include "stats/nlq_udaf.h"

#include <cstring>
#include <limits>

#include "common/strings.h"
#include "udf/heap_segment.h"
#include "udf/packing.h"

namespace nlq::stats {

using storage::DataType;
using storage::Datum;

namespace {

// ---------------------------------------------------------------------------
// nlq_list / nlq_string state: NlqState and its INIT/ROW/MERGE/
// FINALIZE arithmetic live in stats/nlq_kernel.{h,cc}, shared with the
// engine's columnar fast path so both produce byte-identical results.
// ---------------------------------------------------------------------------

static_assert(sizeof(NlqState) <= udf::kDefaultHeapCapacity,
              "NlqState must fit one heap segment");
static_assert(std::is_trivially_destructible_v<NlqState>);

Status FixDimensionality(NlqState* s, size_t d, const Datum& kind_arg) {
  if (kind_arg.is_null() || kind_arg.type() != DataType::kVarchar) {
    return Status::InvalidArgument(
        "nlq: first argument must be 'diag', 'triang' or 'full'");
  }
  NLQ_ASSIGN_OR_RETURN(MatrixKind kind,
                       MatrixKindFromString(kind_arg.string_value()));
  return SetNlqShape(s, d, kind);
}

// ---------------------------------------------------------------------------
// nlq_list
// ---------------------------------------------------------------------------

class NlqListUdf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "nlq_list";
    return kName;
  }
  DataType return_type() const override { return DataType::kVarchar; }

  Status CheckArity(size_t num_args) const override {
    if (num_args < 2) {
      return Status::InvalidArgument(
          "nlq_list(kind, X1, ..., Xd) needs at least 2 arguments");
    }
    if (num_args - 1 > kMaxUdfDims) {
      return Status::InvalidArgument(StringPrintf(
          "nlq_list supports at most d=%zu dimensions", kMaxUdfDims));
    }
    return Status::OK();
  }

  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    NlqState* state = static_cast<NlqState*>(heap->Allocate(sizeof(NlqState)));
    if (state == nullptr) {
      return Status::ResourceExhausted("nlq_list state exceeds heap segment");
    }
    ResetNlqState(state);
    return state;
  }

  Status Accumulate(void* raw_state,
                    const std::vector<Datum>& args) const override {
    NlqState* s = static_cast<NlqState*>(raw_state);
    const size_t d = args.size() - 1;
    if (s->d < 0) NLQ_RETURN_IF_ERROR(FixDimensionality(s, d, args[0]));
    // NULL policy: skip incomplete rows entirely (see nlq_udaf.h) —
    // coercing NULL to 0.0 would silently bias L and Q.
    for (size_t a = 0; a < d; ++a) {
      if (args[a + 1].is_null()) return Status::OK();
    }
    // List style: parameters map straight into the local array
    // ("the UDF directly assigns vector entries in the parameter list
    // to the UDF internal array entries").
    double x[kMaxUdfDims];
    for (size_t a = 0; a < d; ++a) x[a] = args[a + 1].AsDouble();
    NlqAccumulatePoint(s, x);
    return Status::OK();
  }

  bool SupportsColumnarSpans() const override { return true; }

  Status AccumulateSpans(void* raw_state, const std::vector<Datum>& const_args,
                         const double* const* cols, size_t num_cols,
                         size_t rows) const override {
    NlqState* s = static_cast<NlqState*>(raw_state);
    if (const_args.size() != 1 || num_cols == 0) {
      return Status::Internal("nlq_list spans: expected kind + value spans");
    }
    if (s->d < 0) {
      NLQ_RETURN_IF_ERROR(FixDimensionality(s, num_cols, const_args[0]));
    } else if (static_cast<size_t>(s->d) != num_cols) {
      return Status::Internal("nlq_list spans: dimensionality changed");
    }
    NlqAccumulateSpans(s, cols, rows);
    return Status::OK();
  }

  Status Merge(void* state, const void* other) const override {
    return NlqMergeStates(static_cast<NlqState*>(state),
                          static_cast<const NlqState*>(other));
  }

  StatusOr<Datum> Finalize(const void* state) const override {
    return NlqFinalizeState(static_cast<const NlqState*>(state));
  }

  /// NlqState is a self-contained POD (static_asserted above), so the
  /// maintained-view registry may memcpy it between heap segments.
  size_t RelocatableStateSize() const override { return sizeof(NlqState); }
};

// ---------------------------------------------------------------------------
// nlq_string
// ---------------------------------------------------------------------------

class NlqStringUdf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "nlq_string";
    return kName;
  }
  DataType return_type() const override { return DataType::kVarchar; }

  Status CheckArity(size_t num_args) const override {
    if (num_args != 2) {
      return Status::InvalidArgument(
          "nlq_string(kind, packed_point) needs exactly 2 arguments");
    }
    return Status::OK();
  }

  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    NlqState* state = static_cast<NlqState*>(heap->Allocate(sizeof(NlqState)));
    if (state == nullptr) {
      return Status::ResourceExhausted(
          "nlq_string state exceeds heap segment");
    }
    ResetNlqState(state);
    return state;
  }

  Status Accumulate(void* raw_state,
                    const std::vector<Datum>& args) const override {
    NlqState* s = static_cast<NlqState*>(raw_state);
    // NULL policy: a NULL packed point is an incomplete row — skip it
    // (see nlq_udaf.h).
    if (args[1].is_null()) return Status::OK();
    if (args[1].type() != DataType::kVarchar) {
      return Status::InvalidArgument(
          "nlq_string expects a packed VARCHAR point");
    }
    // String style pays the per-row parse ("it must be parsed to get
    // numbers back, so that they are properly stored in an array").
    double x[kMaxUdfDims];
    NLQ_ASSIGN_OR_RETURN(
        size_t d,
        udf::UnpackDoublesInto(args[1].string_value(), x, kMaxUdfDims));
    if (s->d < 0) {
      NLQ_RETURN_IF_ERROR(FixDimensionality(s, d, args[0]));
    } else if (static_cast<size_t>(s->d) != d) {
      return Status::InvalidArgument(
          "nlq_string: packed point dimensionality changed mid-scan");
    }
    NlqAccumulatePoint(s, x);
    return Status::OK();
  }

  Status Merge(void* state, const void* other) const override {
    return NlqMergeStates(static_cast<NlqState*>(state),
                          static_cast<const NlqState*>(other));
  }

  StatusOr<Datum> Finalize(const void* state) const override {
    return NlqFinalizeState(static_cast<const NlqState*>(state));
  }

  size_t RelocatableStateSize() const override { return sizeof(NlqState); }
};

// ---------------------------------------------------------------------------
// nlq_block — partitioned computation for d > kMaxUdfDims (Table 6)
// ---------------------------------------------------------------------------

struct NlqBlockState {
  int32_t rows;  // -1 until first row
  int32_t cols;
  int32_t a_lo, a_hi, b_lo, b_hi;  // 1-based inclusive
  double n;
  double l[kMaxUdfDims];
  double q[kMaxUdfDims][kMaxUdfDims];
};
static_assert(sizeof(NlqBlockState) <= udf::kDefaultHeapCapacity);

class NlqBlockUdf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "nlq_block";
    return kName;
  }
  DataType return_type() const override { return DataType::kVarchar; }

  Status CheckArity(size_t num_args) const override {
    if (num_args < 6) {
      return Status::InvalidArgument(
          "nlq_block(a_lo, a_hi, b_lo, b_hi, Xa..., Xb...) needs >= 6 args");
    }
    return Status::OK();
  }

  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    auto* state =
        static_cast<NlqBlockState*>(heap->Allocate(sizeof(NlqBlockState)));
    if (state == nullptr) {
      return Status::ResourceExhausted("nlq_block state exceeds heap segment");
    }
    std::memset(state, 0, sizeof(NlqBlockState));
    state->rows = -1;
    return state;
  }

  Status Accumulate(void* raw_state,
                    const std::vector<Datum>& args) const override {
    auto* s = static_cast<NlqBlockState*>(raw_state);
    if (s->rows < 0) NLQ_RETURN_IF_ERROR(FixRanges(s, args));
    const size_t rows = static_cast<size_t>(s->rows);
    const size_t cols = static_cast<size_t>(s->cols);
    if (args.size() != 4 + rows + cols) {
      return Status::InvalidArgument("nlq_block: argument count mismatch");
    }
    // NULL policy: skip incomplete rows entirely (see nlq_udaf.h).
    for (size_t i = 4; i < args.size(); ++i) {
      if (args[i].is_null()) return Status::OK();
    }
    double xa[kMaxUdfDims];
    double xb[kMaxUdfDims];
    for (size_t a = 0; a < rows; ++a) xa[a] = args[4 + a].AsDouble();
    for (size_t b = 0; b < cols; ++b) xb[b] = args[4 + rows + b].AsDouble();
    s->n += 1.0;
    for (size_t a = 0; a < rows; ++a) {
      s->l[a] += xa[a];
      double* row = s->q[a];
      for (size_t b = 0; b < cols; ++b) row[b] += xa[a] * xb[b];
    }
    return Status::OK();
  }

  Status Merge(void* state, const void* other) const override {
    auto* dst = static_cast<NlqBlockState*>(state);
    const auto* src = static_cast<const NlqBlockState*>(other);
    if (src->rows < 0) return Status::OK();
    if (dst->rows < 0) {
      std::memcpy(dst, src, sizeof(NlqBlockState));
      return Status::OK();
    }
    if (dst->a_lo != src->a_lo || dst->a_hi != src->a_hi ||
        dst->b_lo != src->b_lo || dst->b_hi != src->b_hi) {
      return Status::Internal("nlq_block: partial states disagree on ranges");
    }
    dst->n += src->n;
    for (int32_t a = 0; a < dst->rows; ++a) {
      dst->l[a] += src->l[a];
      for (int32_t b = 0; b < dst->cols; ++b) dst->q[a][b] += src->q[a][b];
    }
    return Status::OK();
  }

  size_t RelocatableStateSize() const override {
    return sizeof(NlqBlockState);
  }

  StatusOr<Datum> Finalize(const void* raw_state) const override {
    const auto* s = static_cast<const NlqBlockState*>(raw_state);
    std::string packed;
    if (s->rows < 0) {
      packed = "0|0|0|0|0||";
      return Datum::Varchar(std::move(packed));
    }
    packed += std::to_string(s->a_lo);
    packed += '|';
    packed += std::to_string(s->a_hi);
    packed += '|';
    packed += std::to_string(s->b_lo);
    packed += '|';
    packed += std::to_string(s->b_hi);
    packed += '|';
    AppendDouble(&packed, s->n);
    packed += '|';
    for (int32_t a = 0; a < s->rows; ++a) {
      if (a > 0) packed += ';';
      AppendDouble(&packed, s->l[a]);
    }
    packed += '|';
    bool first = true;
    for (int32_t a = 0; a < s->rows; ++a) {
      for (int32_t b = 0; b < s->cols; ++b) {
        if (!first) packed += ';';
        AppendDouble(&packed, s->q[a][b]);
        first = false;
      }
    }
    return Datum::Varchar(std::move(packed));
  }

 private:
  static Status FixRanges(NlqBlockState* s, const std::vector<Datum>& args) {
    const int64_t a_lo = static_cast<int64_t>(args[0].AsDouble());
    const int64_t a_hi = static_cast<int64_t>(args[1].AsDouble());
    const int64_t b_lo = static_cast<int64_t>(args[2].AsDouble());
    const int64_t b_hi = static_cast<int64_t>(args[3].AsDouble());
    if (a_lo < 1 || a_hi < a_lo || b_lo < 1 || b_hi < b_lo) {
      return Status::InvalidArgument("nlq_block: invalid subscript ranges");
    }
    const int64_t rows = a_hi - a_lo + 1;
    const int64_t cols = b_hi - b_lo + 1;
    if (rows > static_cast<int64_t>(kMaxUdfDims) ||
        cols > static_cast<int64_t>(kMaxUdfDims)) {
      return Status::InvalidArgument(StringPrintf(
          "nlq_block: block side exceeds MAX_d=%zu", kMaxUdfDims));
    }
    s->a_lo = static_cast<int32_t>(a_lo);
    s->a_hi = static_cast<int32_t>(a_hi);
    s->b_lo = static_cast<int32_t>(b_lo);
    s->b_hi = static_cast<int32_t>(b_hi);
    s->rows = static_cast<int32_t>(rows);
    s->cols = static_cast<int32_t>(cols);
    return Status::OK();
  }
};

}  // namespace

Status RegisterNlqUdfs(udf::UdfRegistry* registry) {
  NLQ_RETURN_IF_ERROR(registry->RegisterAggregate(
      std::make_unique<NlqListUdf>()));
  NLQ_RETURN_IF_ERROR(registry->RegisterAggregate(
      std::make_unique<NlqStringUdf>()));
  return registry->RegisterAggregate(std::make_unique<NlqBlockUdf>());
}

StatusOr<NlqBlock> ParseNlqBlock(std::string_view packed) {
  const std::vector<std::string_view> sections = SplitString(packed, '|');
  if (sections.size() != 7) {
    return Status::ParseError("packed nlq_block must have 7 '|' sections");
  }
  NlqBlock block;
  NLQ_ASSIGN_OR_RETURN(int64_t a_lo, ParseInt64(sections[0]));
  NLQ_ASSIGN_OR_RETURN(int64_t a_hi, ParseInt64(sections[1]));
  NLQ_ASSIGN_OR_RETURN(int64_t b_lo, ParseInt64(sections[2]));
  NLQ_ASSIGN_OR_RETURN(int64_t b_hi, ParseInt64(sections[3]));
  NLQ_ASSIGN_OR_RETURN(block.n, ParseDouble(sections[4]));
  if (a_lo == 0 && a_hi == 0) return block;  // empty input marker
  if (a_lo < 1 || a_hi < a_lo || b_lo < 1 || b_hi < b_lo) {
    return Status::ParseError("nlq_block: invalid ranges");
  }
  block.a_lo = static_cast<size_t>(a_lo);
  block.a_hi = static_cast<size_t>(a_hi);
  block.b_lo = static_cast<size_t>(b_lo);
  block.b_hi = static_cast<size_t>(b_hi);
  NLQ_ASSIGN_OR_RETURN(block.l, udf::UnpackDoubles(sections[5]));
  NLQ_ASSIGN_OR_RETURN(block.q, udf::UnpackDoubles(sections[6]));
  const size_t rows = block.a_hi - block.a_lo + 1;
  const size_t cols = block.b_hi - block.b_lo + 1;
  if (block.l.size() != rows || block.q.size() != rows * cols) {
    return Status::ParseError("nlq_block: value counts do not match ranges");
  }
  return block;
}

Status MergeBlockIntoSufStats(const NlqBlock& block, SufStats* stats) {
  if (stats->kind() != MatrixKind::kFull) {
    return Status::InvalidArgument(
        "block assembly requires a full-kind SufStats");
  }
  if (block.a_lo == 0) return Status::OK();  // empty block
  if (block.a_hi > stats->d() || block.b_hi > stats->d()) {
    return Status::InvalidArgument("block ranges exceed SufStats d");
  }
  const size_t rows = block.a_hi - block.a_lo + 1;
  const size_t cols = block.b_hi - block.b_lo + 1;
  const bool diagonal_block =
      block.a_lo == block.b_lo && block.a_hi == block.b_hi;

  // L comes only from diagonal blocks (each dimension range appears in
  // exactly one), and n only from the first diagonal block, so nothing
  // is double-counted.
  if (diagonal_block) {
    if (block.a_lo == 1) stats->AddToN(block.n);
    for (size_t a = 0; a < rows; ++a) {
      stats->AddToL(block.a_lo - 1 + a, block.l[a]);
    }
  }
  for (size_t a = 0; a < rows; ++a) {
    for (size_t b = 0; b < cols; ++b) {
      const size_t qa = block.a_lo - 1 + a;
      const size_t qb = block.b_lo - 1 + b;
      const double v = block.q[a * cols + b];
      stats->AddToQ(qa, qb, v);
      // Off-diagonal blocks fill the mirrored entries too, so only
      // the upper (or lower) block set needs computing.
      if (!diagonal_block) stats->AddToQ(qb, qa, v);
    }
  }
  return Status::OK();
}

}  // namespace nlq::stats
