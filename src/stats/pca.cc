#include "stats/pca.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/lu.h"

namespace nlq::stats {

double PcaModel::ExplainedVarianceRatio() const {
  if (total_variance <= 0.0) return 0.0;
  double captured = 0.0;
  for (double ev : eigenvalues) captured += ev;
  return captured / total_variance;
}

linalg::Vector PcaModel::Score(const double* x) const {
  linalg::Vector centered(d);
  for (size_t a = 0; a < d; ++a) {
    centered[a] = x[a] - mu[a];
    if (input == PcaInput::kCorrelation && sigma[a] > 0.0) {
      centered[a] /= sigma[a];
    }
  }
  linalg::Vector out(k, 0.0);
  for (size_t j = 0; j < k; ++j) {
    double sum = 0.0;
    for (size_t a = 0; a < d; ++a) sum += lambda(a, j) * centered[a];
    out[j] = sum;
  }
  return out;
}

StatusOr<PcaModel> FitPca(const SufStats& stats, size_t k, PcaInput input) {
  const size_t d = stats.d();
  if (k == 0 || k > d) {
    return Status::InvalidArgument("PCA requires 1 <= k <= d");
  }
  linalg::Matrix target;
  if (input == PcaInput::kCorrelation) {
    NLQ_ASSIGN_OR_RETURN(target, stats.CorrelationMatrix());
  } else {
    NLQ_ASSIGN_OR_RETURN(target, stats.CovarianceMatrix());
  }
  NLQ_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                       linalg::SymmetricEigen(target));

  PcaModel model;
  model.d = d;
  model.k = k;
  model.input = input;
  model.mu = stats.Mean();
  model.sigma.assign(d, 1.0);
  if (input == PcaInput::kCorrelation) {
    NLQ_ASSIGN_OR_RETURN(linalg::Matrix cov, stats.CovarianceMatrix());
    for (size_t a = 0; a < d; ++a) {
      model.sigma[a] = std::sqrt(std::max(0.0, cov(a, a)));
    }
  }
  model.lambda = linalg::Matrix(d, k);
  model.eigenvalues.resize(k);
  model.total_variance = 0.0;
  for (double ev : eig.eigenvalues) model.total_variance += std::max(0.0, ev);
  for (size_t j = 0; j < k; ++j) {
    model.eigenvalues[j] = std::max(0.0, eig.eigenvalues[j]);
    for (size_t a = 0; a < d; ++a) {
      model.lambda(a, j) = eig.eigenvectors(a, j);
    }
  }
  return model;
}

StatusOr<FactorAnalysisModel> FitFactorAnalysis(const SufStats& stats,
                                                size_t k) {
  NLQ_ASSIGN_OR_RETURN(PcaModel pca,
                       FitPca(stats, k, PcaInput::kCorrelation));
  FactorAnalysisModel model;
  model.d = pca.d;
  model.k = k;
  model.loadings = linalg::Matrix(pca.d, k);
  model.communalities.assign(pca.d, 0.0);
  model.uniquenesses.assign(pca.d, 0.0);
  for (size_t j = 0; j < k; ++j) {
    const double scale = std::sqrt(std::max(0.0, pca.eigenvalues[j]));
    for (size_t a = 0; a < pca.d; ++a) {
      model.loadings(a, j) = pca.lambda(a, j) * scale;
    }
  }
  for (size_t a = 0; a < pca.d; ++a) {
    double communality = 0.0;
    for (size_t j = 0; j < k; ++j) {
      communality += model.loadings(a, j) * model.loadings(a, j);
    }
    model.communalities[a] = communality;
    // On the correlation scale each dimension has unit variance.
    model.uniquenesses[a] = std::max(0.0, 1.0 - communality);
  }
  return model;
}

StatusOr<FactorAnalysisModel> FitFactorAnalysisML(const SufStats& stats,
                                                  size_t k,
                                                  size_t max_iterations,
                                                  double tolerance) {
  NLQ_ASSIGN_OR_RETURN(linalg::Matrix rho, stats.CorrelationMatrix());
  const size_t d = stats.d();
  if (k == 0 || k >= d) {
    return Status::InvalidArgument(
        "ML factor analysis requires 1 <= k < d factors");
  }

  // Initialize Lambda / Psi from the principal-factor solution.
  NLQ_ASSIGN_OR_RETURN(FactorAnalysisModel init,
                       FitFactorAnalysis(stats, k));
  linalg::Matrix lambda = init.loadings;  // d x k
  linalg::Vector psi = init.uniquenesses; // d
  for (double& u : psi) u = std::max(u, 1e-4);

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Sigma = Lambda Lambda^T + Psi; beta = Lambda^T Sigma^{-1}.
    linalg::Matrix sigma = lambda * lambda.Transpose();
    for (size_t a = 0; a < d; ++a) sigma(a, a) += psi[a];
    NLQ_ASSIGN_OR_RETURN(linalg::Matrix sigma_inv, linalg::Invert(sigma));
    const linalg::Matrix beta = lambda.Transpose() * sigma_inv;  // k x d

    // Posterior moments over the data summarized by rho:
    //   E[z x^T] = beta rho                       (k x d)
    //   E[z z^T] = I - beta Lambda + beta rho beta^T  (k x k)
    const linalg::Matrix ezx = beta * rho;
    linalg::Matrix ezz =
        linalg::Matrix::Identity(k) - beta * lambda + ezx * beta.Transpose();

    // M step: Lambda = (rho beta^T) E[zz]^{-1};
    //         Psi    = diag(rho - Lambda beta rho).
    NLQ_ASSIGN_OR_RETURN(linalg::Matrix ezz_inv, linalg::Invert(ezz));
    const linalg::Matrix lambda_new = ezx.Transpose() * ezz_inv;  // d x k
    const linalg::Matrix reconstructed = lambda_new * ezx;        // d x d
    linalg::Vector psi_new(d);
    for (size_t a = 0; a < d; ++a) {
      psi_new[a] = std::max(1e-6, rho(a, a) - reconstructed(a, a));
    }

    const double moved = lambda_new.MaxAbsDiff(lambda);
    lambda = lambda_new;
    psi = psi_new;
    if (moved < tolerance) break;
  }

  FactorAnalysisModel model;
  model.d = d;
  model.k = k;
  model.loadings = std::move(lambda);
  model.communalities.assign(d, 0.0);
  model.uniquenesses = psi;
  for (size_t a = 0; a < d; ++a) {
    double communality = 0.0;
    for (size_t j = 0; j < k; ++j) {
      communality += model.loadings(a, j) * model.loadings(a, j);
    }
    model.communalities[a] = communality;
  }
  return model;
}

}  // namespace nlq::stats
