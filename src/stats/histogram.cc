#include "stats/histogram.h"

#include <cmath>
#include <cstring>

#include "common/strings.h"
#include "udf/heap_segment.h"

namespace nlq::stats {

using storage::DataType;
using storage::Datum;

namespace {

struct HistState {
  int64_t bins;  // -1 until the first row fixes the layout
  double lo;
  double hi;
  double width;
  uint64_t below;
  uint64_t above;
  uint64_t counts[kMaxHistogramBins];
};
static_assert(sizeof(HistState) <= udf::kDefaultHeapCapacity);

class HistUdf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "hist";
    return kName;
  }
  DataType return_type() const override { return DataType::kVarchar; }

  Status CheckArity(size_t num_args) const override {
    if (num_args != 4) {
      return Status::InvalidArgument(
          "hist(x, lo, hi, bins) needs exactly 4 arguments");
    }
    return Status::OK();
  }

  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    auto* state = static_cast<HistState*>(heap->Allocate(sizeof(HistState)));
    if (state == nullptr) {
      return Status::ResourceExhausted("hist state exceeds heap segment");
    }
    std::memset(state, 0, sizeof(HistState));
    state->bins = -1;
    return state;
  }

  Status Accumulate(void* raw_state,
                    const std::vector<Datum>& args) const override {
    auto* s = static_cast<HistState*>(raw_state);
    if (s->bins < 0) {
      const double lo = args[1].AsDouble();
      const double hi = args[2].AsDouble();
      const int64_t bins = static_cast<int64_t>(args[3].AsDouble());
      if (!(hi > lo)) {
        return Status::InvalidArgument("hist: requires hi > lo");
      }
      if (bins < 1 || bins > static_cast<int64_t>(kMaxHistogramBins)) {
        return Status::InvalidArgument(StringPrintf(
            "hist: bins must be in 1..%zu", kMaxHistogramBins));
      }
      s->lo = lo;
      s->hi = hi;
      s->bins = bins;
      s->width = (hi - lo) / static_cast<double>(bins);
    }
    if (args[0].is_null()) return Status::OK();  // NULLs are not binned
    const double x = args[0].AsDouble();
    if (x < s->lo) {
      ++s->below;
    } else if (x >= s->hi) {
      ++s->above;
    } else {
      int64_t bin = static_cast<int64_t>((x - s->lo) / s->width);
      if (bin >= s->bins) bin = s->bins - 1;  // guard FP edge
      ++s->counts[bin];
    }
    return Status::OK();
  }

  Status Merge(void* state, const void* other) const override {
    auto* dst = static_cast<HistState*>(state);
    const auto* src = static_cast<const HistState*>(other);
    if (src->bins < 0) return Status::OK();
    if (dst->bins < 0) {
      std::memcpy(dst, src, sizeof(HistState));
      return Status::OK();
    }
    if (dst->bins != src->bins || dst->lo != src->lo || dst->hi != src->hi) {
      return Status::Internal("hist: partial states disagree on layout");
    }
    dst->below += src->below;
    dst->above += src->above;
    for (int64_t b = 0; b < dst->bins; ++b) dst->counts[b] += src->counts[b];
    return Status::OK();
  }

  StatusOr<Datum> Finalize(const void* raw_state) const override {
    const auto* s = static_cast<const HistState*>(raw_state);
    std::string packed;
    if (s->bins < 0) {
      packed = "0|0|0||0|0";
      return Datum::Varchar(std::move(packed));
    }
    AppendDouble(&packed, s->lo);
    packed += '|';
    AppendDouble(&packed, s->hi);
    packed += '|';
    packed += std::to_string(s->bins);
    packed += '|';
    for (int64_t b = 0; b < s->bins; ++b) {
      if (b > 0) packed += ';';
      packed += std::to_string(s->counts[b]);
    }
    packed += '|';
    packed += std::to_string(s->below);
    packed += '|';
    packed += std::to_string(s->above);
    return Datum::Varchar(std::move(packed));
  }
};

class ZScoreUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "zscore";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }

  Status CheckArity(size_t num_args) const override {
    if (num_args != 3) {
      return Status::InvalidArgument(
          "zscore(x, mu, sigma) needs exactly 3 arguments");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    if (args[0].is_null() || args[1].is_null() || args[2].is_null()) {
      return Datum::Null(DataType::kDouble);
    }
    const double sigma = args[2].AsDouble();
    if (sigma <= 0.0) return Datum::Null(DataType::kDouble);
    return Datum::Double(
        std::fabs(args[0].AsDouble() - args[1].AsDouble()) / sigma);
  }
};

}  // namespace

uint64_t Histogram::TotalCount() const {
  uint64_t total = below + above;
  for (uint64_t c : counts) total += c;
  return total;
}

size_t Histogram::BinFor(double x) const {
  const double width = BinWidth();
  if (width <= 0.0) return 0;
  size_t bin = static_cast<size_t>((x - lo) / width);
  if (bin >= bins) bin = bins - 1;
  return bin;
}

StatusOr<Histogram> Histogram::FromPackedString(std::string_view packed) {
  const std::vector<std::string_view> sections = SplitString(packed, '|');
  if (sections.size() != 6) {
    return Status::ParseError("packed histogram must have 6 '|' sections");
  }
  Histogram h;
  NLQ_ASSIGN_OR_RETURN(h.lo, ParseDouble(sections[0]));
  NLQ_ASSIGN_OR_RETURN(h.hi, ParseDouble(sections[1]));
  NLQ_ASSIGN_OR_RETURN(int64_t bins, ParseInt64(sections[2]));
  if (bins < 0 || bins > static_cast<int64_t>(kMaxHistogramBins)) {
    return Status::ParseError("histogram bin count out of range");
  }
  h.bins = static_cast<size_t>(bins);
  if (h.bins > 0) {
    const std::vector<std::string_view> parts = SplitString(sections[3], ';');
    if (parts.size() != h.bins) {
      return Status::ParseError("histogram count list does not match bins");
    }
    h.counts.resize(h.bins);
    for (size_t b = 0; b < h.bins; ++b) {
      NLQ_ASSIGN_OR_RETURN(int64_t c, ParseInt64(parts[b]));
      if (c < 0) return Status::ParseError("negative histogram count");
      h.counts[b] = static_cast<uint64_t>(c);
    }
  }
  NLQ_ASSIGN_OR_RETURN(int64_t below, ParseInt64(sections[4]));
  NLQ_ASSIGN_OR_RETURN(int64_t above, ParseInt64(sections[5]));
  h.below = static_cast<uint64_t>(below);
  h.above = static_cast<uint64_t>(above);
  return h;
}

Status RegisterHistogramUdfs(udf::UdfRegistry* registry) {
  NLQ_RETURN_IF_ERROR(registry->RegisterAggregate(std::make_unique<HistUdf>()));
  return registry->RegisterScalar(std::make_unique<ZScoreUdf>());
}

std::string HistogramQuery(const std::string& table,
                           const std::string& column, const SufStats& stats,
                           size_t dim, size_t bins) {
  const double lo = stats.Min(dim);
  // Widen the top edge so the maximum falls inside the last bin.
  const double span = stats.Max(dim) - lo;
  const double hi = stats.Max(dim) + (span > 0 ? span * 1e-9 : 1.0);
  std::string sql = "SELECT hist(" + column + ", ";
  AppendDouble(&sql, lo);
  sql += ", ";
  AppendDouble(&sql, hi);
  sql += ", " + std::to_string(bins) + ") FROM " + table;
  return sql;
}

}  // namespace nlq::stats
