#ifndef NLQ_STATS_EM_H_
#define NLQ_STATS_EM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "stats/kmeans.h"

namespace nlq::stats {

/// Gaussian mixture model with diagonal covariances — the EM
/// counterpart of K-means the paper discusses in Section 3.1
/// ("Clustering and mixtures of distributions"; clustering techniques
/// "assume dimensions are independent, which makes R_j a diagonal
/// matrix"). The model reuses the clustering layout: C (means),
/// R (per-dimension variances) and W (mixture weights).
struct GaussianMixtureModel {
  size_t d = 0;
  size_t k = 0;
  linalg::Matrix means;      // k x d
  linalg::Matrix variances;  // k x d (diagonal R_j)
  linalg::Vector weights;    // k, sums to 1
  double log_likelihood = 0.0;
  size_t iterations_run = 0;

  /// log p(x) under the mixture.
  double LogDensity(const double* x) const;

  /// Posterior responsibilities p(j | x), size k.
  linalg::Vector Responsibilities(const double* x) const;

  /// Hard assignment: argmax_j p(j | x).
  size_t MostLikelyCluster(const double* x) const;
};

struct EmOptions {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Stop when the per-point log-likelihood improves by less than this.
  double tolerance = 1e-6;
  uint64_t seed = 42;
  /// Variance floor, avoids singularities on degenerate clusters.
  double min_variance = 1e-6;
};

/// Fits the mixture by EM. Each iteration is exactly the paper's
/// sufficient-statistics pattern with soft counts: the E step computes
/// responsibilities, the M step folds every point into per-cluster
/// weighted (N_j, L_j, Q_j-diagonal) and rebuilds C, R, W — i.e. the
/// same (n, L, Q) summaries, just weighted.
StatusOr<GaussianMixtureModel> FitGaussianMixture(
    const std::vector<linalg::Vector>& points, const EmOptions& options);

/// Initializes the mixture from a K-means solution (the standard
/// practice; also shows the two models share C/R/W).
GaussianMixtureModel MixtureFromKMeans(const KMeansModel& kmeans,
                                       double min_variance = 1e-6);

}  // namespace nlq::stats

#endif  // NLQ_STATS_EM_H_
