#include "stats/nlq_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>

#include "common/strings.h"

#if defined(__x86_64__) || defined(__amd64__)
#include <immintrin.h>
#define NLQ_KERNEL_X86 1
#endif

namespace nlq::stats {
namespace {

/// Rows per block: one block of a 64-dim scan is ~512 KB of column
/// data, so the Q passes re-read it from cache instead of RAM.
constexpr size_t kRowBlock = 1024;

/// Accumulator chains per inner loop. Each q[a][b] (and l[a]) is a
/// strict sequential FP reduction — required for bit-identity with the
/// row path — so a single chain is add-latency-bound; kTile parallel
/// chains over *different* accumulators restore throughput.
constexpr size_t kTile = 8;

/// L + min/max for columns [a0, a0+an) over one row block.
void AccumulateLMinMax(NlqState* s, const double* const* cols, size_t a0,
                       size_t an, size_t rows) {
  double lacc[kTile], mn[kTile], mx[kTile];
  const double* x[kTile];
  for (size_t j = 0; j < an; ++j) {
    lacc[j] = s->l[a0 + j];
    mn[j] = s->mn[a0 + j];
    mx[j] = s->mx[a0 + j];
    x[j] = cols[a0 + j];
  }
  if (an == kTile) {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < kTile; ++j) {
        const double v = x[j][r];
        lacc[j] += v;
        if (v < mn[j]) mn[j] = v;
        if (v > mx[j]) mx[j] = v;
      }
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < an; ++j) {
        const double v = x[j][r];
        lacc[j] += v;
        if (v < mn[j]) mn[j] = v;
        if (v > mx[j]) mx[j] = v;
      }
    }
  }
  for (size_t j = 0; j < an; ++j) {
    s->l[a0 + j] = lacc[j];
    s->mn[a0 + j] = mn[j];
    s->mx[a0 + j] = mx[j];
  }
}

/// One Q row tile: qrow[b0..b0+bn) += xa . x_b over the row block.
void AccumulateQTile(double* qrow, const double* xa, const double* const* cols,
                     size_t b0, size_t bn, size_t rows) {
  double acc[kTile];
  const double* xb[kTile];
  for (size_t j = 0; j < bn; ++j) {
    acc[j] = qrow[b0 + j];
    xb[j] = cols[b0 + j];
  }
  if (bn == kTile) {
    for (size_t r = 0; r < rows; ++r) {
      const double v = xa[r];
      for (size_t j = 0; j < kTile; ++j) acc[j] += v * xb[j][r];
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      const double v = xa[r];
      for (size_t j = 0; j < bn; ++j) acc[j] += v * xb[j][r];
    }
  }
  for (size_t j = 0; j < bn; ++j) qrow[b0 + j] = acc[j];
}

/// Diagonal kind: L, Q diagonal, and min/max fused in one pass per
/// column tile.
void AccumulateDiagTile(NlqState* s, const double* const* cols, size_t a0,
                        size_t an, size_t rows) {
  double lacc[kTile], qacc[kTile], mn[kTile], mx[kTile];
  const double* x[kTile];
  for (size_t j = 0; j < an; ++j) {
    lacc[j] = s->l[a0 + j];
    qacc[j] = s->q[a0 + j][a0 + j];
    mn[j] = s->mn[a0 + j];
    mx[j] = s->mx[a0 + j];
    x[j] = cols[a0 + j];
  }
  if (an == kTile) {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < kTile; ++j) {
        const double v = x[j][r];
        lacc[j] += v;
        qacc[j] += v * v;
        if (v < mn[j]) mn[j] = v;
        if (v > mx[j]) mx[j] = v;
      }
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < an; ++j) {
        const double v = x[j][r];
        lacc[j] += v;
        qacc[j] += v * v;
        if (v < mn[j]) mn[j] = v;
        if (v > mx[j]) mx[j] = v;
      }
    }
  }
  for (size_t j = 0; j < an; ++j) {
    s->l[a0 + j] = lacc[j];
    s->q[a0 + j][a0 + j] = qacc[j];
    s->mn[a0 + j] = mn[j];
    s->mx[a0 + j] = mx[j];
  }
}

/// The blocked + tiled scalar implementation — the bit-exactness
/// oracle the AVX2 path is verified against.
void AccumulateSpansScalar(NlqState* s, const double* const* cols,
                           size_t rows) {
  const size_t d = static_cast<size_t>(s->d);
  const MatrixKind kind = static_cast<MatrixKind>(s->kind);
  const double* shifted[kMaxUdfDims];
  for (size_t r0 = 0; r0 < rows; r0 += kRowBlock) {
    const size_t rn = std::min(kRowBlock, rows - r0);
    for (size_t a = 0; a < d; ++a) shifted[a] = cols[a] + r0;
    if (kind == MatrixKind::kDiagonal) {
      for (size_t a0 = 0; a0 < d; a0 += kTile) {
        AccumulateDiagTile(s, shifted, a0, std::min(kTile, d - a0), rn);
      }
      continue;
    }
    for (size_t a0 = 0; a0 < d; a0 += kTile) {
      AccumulateLMinMax(s, shifted, a0, std::min(kTile, d - a0), rn);
    }
    for (size_t a = 0; a < d; ++a) {
      const size_t bmax = kind == MatrixKind::kLowerTriangular ? a + 1 : d;
      for (size_t b0 = 0; b0 < bmax; b0 += kTile) {
        AccumulateQTile(s->q[a], shifted[a], shifted, b0,
                        std::min(kTile, bmax - b0), rn);
      }
    }
  }
}

std::atomic<NlqKernelMode> g_kernel_mode{NlqKernelMode::kAuto};

bool CpuHasAvx2() {
#if defined(NLQ_KERNEL_X86)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

bool SimdSelected() {
  switch (g_kernel_mode.load(std::memory_order_relaxed)) {
    case NlqKernelMode::kScalar:
      return false;
    case NlqKernelMode::kSimd:
    case NlqKernelMode::kAuto:
      return CpuHasAvx2();
  }
  return false;
}

#if defined(NLQ_KERNEL_X86)

/// Rows transposed per AVX2 block: 64 rows x 64 dims = 32 KB of
/// row-major scratch, small enough to stay L1/L2-resident together
/// with the Q matrix rows the per-row updates stream over.
constexpr size_t kSimdRowBlock = 64;

/// AVX2 span accumulation for the lower-triangular and full kinds.
///
/// Strategy: transpose the block to row-major scratch, then fold one
/// row at a time exactly like NlqAccumulatePoint, vectorizing each
/// row's rank-1 update across *accumulators* (4 adjacent l/mn/mx slots
/// or 4 adjacent q[a][b..b+3] slots per lane group). Every accumulator
/// therefore still sees its contributions as one sequential FP chain
/// in row order — bit-identical to the scalar paths. Multiplies and
/// adds stay separate intrinsics (this TU enables AVX2 but not FMA, so
/// the compiler cannot contract them), and MINPD/MAXPD with the new
/// value as the *first* operand reproduces `(v < mn) ? v : mn`
/// exactly, signed zeros and NaNs included.
__attribute__((target("avx2"))) void AccumulateSpansAvx2(
    NlqState* s, const double* const* cols, size_t rows) {
  const size_t d = static_cast<size_t>(s->d);
  const bool lower =
      static_cast<MatrixKind>(s->kind) == MatrixKind::kLowerTriangular;
  alignas(32) double xrow[kSimdRowBlock * kMaxUdfDims];
  for (size_t r0 = 0; r0 < rows; r0 += kSimdRowBlock) {
    const size_t rn = std::min(kSimdRowBlock, rows - r0);
    for (size_t a = 0; a < d; ++a) {
      const double* col = cols[a] + r0;
      for (size_t i = 0; i < rn; ++i) xrow[i * d + a] = col[i];
    }
    for (size_t i = 0; i < rn; ++i) {
      const double* x = xrow + i * d;
      size_t a = 0;
      for (; a + 4 <= d; a += 4) {
        const __m256d xv = _mm256_loadu_pd(x + a);
        const __m256d lv = _mm256_loadu_pd(s->l + a);
        _mm256_storeu_pd(s->l + a, _mm256_add_pd(lv, xv));
        const __m256d mnv = _mm256_loadu_pd(s->mn + a);
        _mm256_storeu_pd(s->mn + a, _mm256_min_pd(xv, mnv));
        const __m256d mxv = _mm256_loadu_pd(s->mx + a);
        _mm256_storeu_pd(s->mx + a, _mm256_max_pd(xv, mxv));
      }
      for (; a < d; ++a) {
        const double v = x[a];
        s->l[a] += v;
        if (v < s->mn[a]) s->mn[a] = v;
        if (v > s->mx[a]) s->mx[a] = v;
      }
      for (a = 0; a < d; ++a) {
        const __m256d xav = _mm256_set1_pd(x[a]);
        double* qrow = s->q[a];
        const size_t bmax = lower ? a + 1 : d;
        size_t b = 0;
        for (; b + 4 <= bmax; b += 4) {
          const __m256d xbv = _mm256_loadu_pd(x + b);
          const __m256d qv = _mm256_loadu_pd(qrow + b);
          _mm256_storeu_pd(qrow + b,
                           _mm256_add_pd(qv, _mm256_mul_pd(xav, xbv)));
        }
        for (; b < bmax; ++b) qrow[b] += x[a] * x[b];
      }
    }
  }
}

#endif  // NLQ_KERNEL_X86

}  // namespace

void ResetNlqState(NlqState* s) {
  std::memset(s, 0, sizeof(NlqState));
  s->d = -1;
  s->kind = static_cast<int32_t>(MatrixKind::kLowerTriangular);
  for (size_t a = 0; a < kMaxUdfDims; ++a) {
    s->mn[a] = std::numeric_limits<double>::infinity();
    s->mx[a] = -std::numeric_limits<double>::infinity();
  }
}

Status SetNlqShape(NlqState* s, size_t d, MatrixKind kind) {
  if (d == 0 || d > kMaxUdfDims) {
    return Status::InvalidArgument(StringPrintf(
        "nlq: d=%zu out of range 1..%zu (use nlq_block for higher d)", d,
        kMaxUdfDims));
  }
  s->d = static_cast<int32_t>(d);
  s->kind = static_cast<int32_t>(kind);
  return Status::OK();
}

void NlqAccumulatePoint(NlqState* s, const double* x) {
  const size_t d = static_cast<size_t>(s->d);
  s->n += 1.0;
  switch (static_cast<MatrixKind>(s->kind)) {
    case MatrixKind::kDiagonal:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        s->l[a] += xa;
        s->q[a][a] += xa * xa;
      }
      break;
    case MatrixKind::kLowerTriangular:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        s->l[a] += xa;
        double* row = s->q[a];
        for (size_t b = 0; b <= a; ++b) row[b] += xa * x[b];
      }
      break;
    case MatrixKind::kFull:
      for (size_t a = 0; a < d; ++a) {
        const double xa = x[a];
        s->l[a] += xa;
        double* row = s->q[a];
        for (size_t b = 0; b < d; ++b) row[b] += xa * x[b];
      }
      break;
  }
  for (size_t a = 0; a < d; ++a) {
    if (x[a] < s->mn[a]) s->mn[a] = x[a];
    if (x[a] > s->mx[a]) s->mx[a] = x[a];
  }
}

void SetNlqKernelMode(NlqKernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

const char* NlqKernelVariant() { return SimdSelected() ? "avx2" : "scalar"; }

void NlqAccumulateSpans(NlqState* s, const double* const* cols, size_t rows) {
  // n counts whole rows: doubles hold integers exactly here, so one
  // bulk add equals `rows` sequential `+= 1.0`s bit-for-bit.
  s->n += static_cast<double>(rows);
#if defined(NLQ_KERNEL_X86)
  // The AVX2 path covers the dense kinds where the Q update dominates;
  // the diagonal kind and tiny d stay on the (already cheap) scalar
  // path rather than paying the transpose.
  if (static_cast<MatrixKind>(s->kind) != MatrixKind::kDiagonal &&
      static_cast<size_t>(s->d) >= 4 && SimdSelected()) {
    AccumulateSpansAvx2(s, cols, rows);
    return;
  }
#endif
  AccumulateSpansScalar(s, cols, rows);
}

Status NlqMergeStates(NlqState* dst, const NlqState* src) {
  if (src->d < 0) return Status::OK();  // src saw no rows
  if (dst->d < 0) {
    std::memcpy(dst, src, sizeof(NlqState));
    return Status::OK();
  }
  if (dst->d != src->d || dst->kind != src->kind) {
    return Status::Internal("nlq: partial states disagree on d or kind");
  }
  const size_t d = static_cast<size_t>(dst->d);
  dst->n += src->n;
  for (size_t a = 0; a < d; ++a) {
    dst->l[a] += src->l[a];
    if (src->mn[a] < dst->mn[a]) dst->mn[a] = src->mn[a];
    if (src->mx[a] > dst->mx[a]) dst->mx[a] = src->mx[a];
    for (size_t b = 0; b < d; ++b) dst->q[a][b] += src->q[a][b];
  }
  return Status::OK();
}

StatusOr<storage::Datum> NlqFinalizeState(const NlqState* s) {
  if (s->d < 0) {
    // No rows: empty statistics.
    return storage::Datum::Varchar(
        SufStats(0, MatrixKind::kLowerTriangular).ToPackedString());
  }
  const size_t d = static_cast<size_t>(s->d);
  // Emit the same packed layout as SufStats::ToPackedString so
  // SufStats::FromPackedString decodes UDF results directly.
  const SufStats shape(d, static_cast<MatrixKind>(s->kind));
  std::string packed;
  packed.reserve(64 + (3 * d + shape.NumQEntries()) * 18);
  packed += std::to_string(d);
  packed += '|';
  packed += std::to_string(s->kind);
  packed += '|';
  AppendDouble(&packed, s->n);
  packed += '|';
  for (size_t a = 0; a < d; ++a) {
    if (a > 0) packed += ';';
    AppendDouble(&packed, s->l[a]);
  }
  packed += '|';
  for (size_t a = 0; a < d; ++a) {
    if (a > 0) packed += ';';
    AppendDouble(&packed, s->n > 0 ? s->mn[a] : 0.0);
  }
  packed += '|';
  for (size_t a = 0; a < d; ++a) {
    if (a > 0) packed += ';';
    AppendDouble(&packed, s->n > 0 ? s->mx[a] : 0.0);
  }
  packed += '|';
  bool first = true;
  for (size_t a = 0; a < d; ++a) {
    switch (static_cast<MatrixKind>(s->kind)) {
      case MatrixKind::kDiagonal:
        if (!first) packed += ';';
        AppendDouble(&packed, s->q[a][a]);
        first = false;
        break;
      case MatrixKind::kLowerTriangular:
        for (size_t b = 0; b <= a; ++b) {
          if (!first) packed += ';';
          AppendDouble(&packed, s->q[a][b]);
          first = false;
        }
        break;
      case MatrixKind::kFull:
        for (size_t b = 0; b < d; ++b) {
          if (!first) packed += ';';
          AppendDouble(&packed, s->q[a][b]);
          first = false;
        }
        break;
    }
  }
  return storage::Datum::Varchar(std::move(packed));
}

}  // namespace nlq::stats
