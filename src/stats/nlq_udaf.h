#ifndef NLQ_STATS_NLQ_UDAF_H_
#define NLQ_STATS_NLQ_UDAF_H_

#include <cstddef>

#include "common/status.h"
#include "stats/nlq_kernel.h"
#include "stats/sufstats.h"
#include "udf/udf.h"

namespace nlq::stats {

/// NULL policy (paper Section 2.1 complete-data assumption): a row
/// with a NULL in any dimension argument is skipped by every nlq UDF —
/// it contributes to none of n, L, Q, min or max. The columnar fast
/// path implements the same policy by compacting NULL rows away
/// before the fused kernel (see engine/exec/columnar_aggregate_node).
/// kMaxUdfDims and the shared accumulation state live in
/// stats/nlq_kernel.h.
///
/// Registers the three aggregate UDFs with `registry`:
///
///   nlq_list('diag'|'triang'|'full', X1, ..., Xd) -> VARCHAR
///     List parameter-passing style: each dimension is a separate
///     parameter. Returns SufStats::ToPackedString().
///
///   nlq_string('diag'|'triang'|'full', packed_point) -> VARCHAR
///     String parameter-passing style: the point is packed as
///     "x1;x2;...;xd" (see udf::PackDoubles) and parsed per row —
///     the overhead the paper measures in Figure 3.
///
///   nlq_block(a_lo, a_hi, b_lo, b_hi, X_alo..X_ahi, X_blo..X_bhi)
///     -> VARCHAR
///     Computes the L range [a_lo, a_hi] and the full Q block
///     [a_lo..a_hi] x [b_lo..b_hi] (1-based, inclusive), so data sets
///     with d > kMaxUdfDims are covered by several calls in one scan
///     (paper Table 6). Decode with ParseNlqBlock /
///     MergeBlockIntoSufStats.
Status RegisterNlqUdfs(udf::UdfRegistry* registry);

/// A decoded nlq_block result.
struct NlqBlock {
  size_t a_lo = 0, a_hi = 0;  // 1-based inclusive row range
  size_t b_lo = 0, b_hi = 0;  // 1-based inclusive column range
  double n = 0.0;
  std::vector<double> l;  // a_hi - a_lo + 1 values
  std::vector<double> q;  // row-major (a range) x (b range)
};

/// Parses the packed value returned by nlq_block.
StatusOr<NlqBlock> ParseNlqBlock(std::string_view packed);

/// Folds one block into a full-kind SufStats of matching d: Q entries
/// always, L and n only from diagonal blocks (a range == b range) so
/// nothing is double-counted.
Status MergeBlockIntoSufStats(const NlqBlock& block, SufStats* stats);

}  // namespace nlq::stats

#endif  // NLQ_STATS_NLQ_UDAF_H_
