#ifndef NLQ_STATS_MODEL_TABLES_H_
#define NLQ_STATS_MODEL_TABLES_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "stats/kmeans.h"
#include "stats/linreg.h"
#include "stats/pca.h"

namespace nlq::stats {

/// Drops `name` if it exists (idempotent model refresh).
Status DropTableIfExists(engine::Database* db, const std::string& name);

/// Stores β as the paper's single-row layout BETA(b0, b1, ..., bd)
/// ("this table layout allows retrieving all coefficients in a single
/// I/O"). Replaces any existing table.
Status StoreBetaTable(engine::Database* db, const std::string& name,
                      const LinearRegressionModel& model);

/// Loads the d+1 coefficients back (b0 first).
StatusOr<linalg::Vector> LoadBetaTable(engine::Database* db,
                                       const std::string& name);

/// Stores the PCA scoring tables:
///   MU(X1..Xd)        — one row, the mean;
///   LAMBDA(j, X1..Xd) — k rows, row j = component j.
/// For correlation-based PCA the 1/σ scaling is folded into the
/// stored component entries so the fascore UDF's Λᵀ(x − μ) matches
/// PcaModel::Score exactly.
Status StorePcaTables(engine::Database* db, const std::string& mu_name,
                      const std::string& lambda_name, const PcaModel& model);

/// Stores the clustering tables C(j, X1..Xd), R(j, X1..Xd) and
/// W(j, w). Replaces existing tables.
Status StoreClusterTables(engine::Database* db, const std::string& c_name,
                          const std::string& r_name, const std::string& w_name,
                          const KMeansModel& model);

/// Reloads a KMeansModel from its three tables.
StatusOr<KMeansModel> LoadClusterTables(engine::Database* db,
                                        const std::string& c_name,
                                        const std::string& r_name,
                                        const std::string& w_name);

}  // namespace nlq::stats

#endif  // NLQ_STATS_MODEL_TABLES_H_
