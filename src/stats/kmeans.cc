#include "stats/kmeans.h"

#include <cmath>
#include <limits>

#include "common/random.h"

namespace nlq::stats {

size_t KMeansModel::NearestCentroid(const double* x) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < k; ++j) {
    const double dist = SquaredDistanceTo(x, j);
    if (dist < best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

double KMeansModel::SquaredDistanceTo(const double* x, size_t j) const {
  double dist = 0.0;
  for (size_t a = 0; a < d; ++a) {
    const double diff = x[a] - centroids(j, a);
    dist += diff * diff;
  }
  return dist;
}

double KMeansModel::SumSquaredError(
    const std::vector<linalg::Vector>& points) const {
  double sse = 0.0;
  for (const auto& p : points) {
    sse += SquaredDistanceTo(p.data(), NearestCentroid(p.data()));
  }
  return sse;
}

Status UpdateClusterFromStats(const SufStats& cluster_stats, double total_n,
                              size_t j, KMeansModel* model) {
  if (cluster_stats.d() != model->d) {
    return Status::InvalidArgument("cluster stats dimensionality mismatch");
  }
  if (j >= model->k) {
    return Status::InvalidArgument("cluster index out of range");
  }
  const double nj = cluster_stats.n();
  model->counts[j] = nj;
  model->weights[j] = total_n > 0.0 ? nj / total_n : 0.0;
  if (nj <= 0.0) return Status::OK();  // empty cluster keeps its centroid
  for (size_t a = 0; a < model->d; ++a) {
    const double cja = cluster_stats.L(a) / nj;
    model->centroids(j, a) = cja;
    // R_j = Q_j / N_j − C_j C_jᵀ restricted to the diagonal.
    model->radii(j, a) =
        std::max(0.0, cluster_stats.Q(a, a) / nj - cja * cja);
  }
  return Status::OK();
}

namespace {

KMeansModel MakeEmptyModel(size_t d, size_t k) {
  KMeansModel model;
  model.d = d;
  model.k = k;
  model.centroids = linalg::Matrix(k, d);
  model.radii = linalg::Matrix(k, d);
  model.weights.assign(k, 0.0);
  model.counts.assign(k, 0.0);
  return model;
}

/// k-means++ seeding: the first centroid uniform, each subsequent one
/// sampled with probability proportional to its squared distance to
/// the nearest chosen centroid. Avoids the classic failure of two
/// uniform seeds landing in the same blob.
void SeedCentroids(const std::vector<linalg::Vector>& points, Random* rng,
                   KMeansModel* model) {
  const size_t d = model->d;
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::infinity());
  size_t first = rng->NextUint64(points.size());
  for (size_t a = 0; a < d; ++a) model->centroids(0, a) = points[first][a];

  for (size_t j = 1; j < model->k; ++j) {
    // Refresh distances to the newest centroid.
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      const double dist = model->SquaredDistanceTo(points[i].data(), j - 1);
      if (dist < min_dist[i]) min_dist[i] = dist;
      total += min_dist[i];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      for (size_t i = 0; i < points.size(); ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng->NextUint64(points.size());  // all points identical
    }
    for (size_t a = 0; a < d; ++a) model->centroids(j, a) = points[pick][a];
  }
}

StatusOr<KMeansModel> FitIncremental(
    const std::vector<linalg::Vector>& points, KMeansModel model) {
  // One pass: online update of the nearest centroid per point, with
  // per-cluster running sums for the radii.
  const size_t d = model.d;
  std::vector<SufStats> cluster_stats(
      model.k, SufStats(d, MatrixKind::kDiagonal));
  for (const auto& p : points) {
    const size_t j = model.NearestCentroid(p.data());
    cluster_stats[j].Update(p.data());
    const double nj = cluster_stats[j].n();
    for (size_t a = 0; a < d; ++a) {
      // Online mean: C += (x − C) / N_j.
      model.centroids(j, a) += (p[a] - model.centroids(j, a)) / nj;
    }
  }
  for (size_t j = 0; j < model.k; ++j) {
    NLQ_RETURN_IF_ERROR(UpdateClusterFromStats(
        cluster_stats[j], static_cast<double>(points.size()), j, &model));
  }
  return model;
}

}  // namespace

StatusOr<KMeansModel> FitKMeans(const std::vector<linalg::Vector>& points,
                                const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("K-means needs at least one point");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("K-means needs k >= 1");
  }
  const size_t d = points[0].size();
  KMeansModel model = MakeEmptyModel(d, options.k);
  Random rng(options.seed);
  SeedCentroids(points, &rng, &model);

  if (options.incremental) {
    return FitIncremental(points, std::move(model));
  }

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E step folds every point into its nearest cluster's diagonal
    // sufficient statistics (one scan); M step rebuilds C, R, W.
    std::vector<SufStats> cluster_stats(
        options.k, SufStats(d, MatrixKind::kDiagonal));
    for (const auto& p : points) {
      cluster_stats[model.NearestCentroid(p.data())].Update(p.data());
    }
    linalg::Matrix old_centroids = model.centroids;
    for (size_t j = 0; j < options.k; ++j) {
      NLQ_RETURN_IF_ERROR(UpdateClusterFromStats(
          cluster_stats[j], static_cast<double>(points.size()), j, &model));
    }
    double max_move = 0.0;
    for (size_t j = 0; j < options.k; ++j) {
      double move = 0.0;
      for (size_t a = 0; a < d; ++a) {
        const double diff = model.centroids(j, a) - old_centroids(j, a);
        move += diff * diff;
      }
      max_move = std::max(max_move, std::sqrt(move));
    }
    if (max_move < options.tolerance) break;
  }
  return model;
}

}  // namespace nlq::stats
