#include "stats/linreg.h"

#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "linalg/lu.h"

namespace nlq::stats {

double LinearRegressionModel::Predict(const double* x) const {
  double yhat = beta[0];
  for (size_t a = 0; a < d; ++a) yhat += beta[a + 1] * x[a];
  return yhat;
}

double LinearRegressionModel::StdError(size_t i) const {
  return std::sqrt(std::max(0.0, var_beta(i, i)));
}

double LinearRegressionModel::TStatistic(size_t i) const {
  const double se = StdError(i);
  if (se <= 0.0) {
    return beta[i] == 0.0 ? 0.0
                          : std::numeric_limits<double>::infinity();
  }
  return beta[i] / se;
}

StatusOr<LinearRegressionModel> FitLinearRegression(const SufStats& stats) {
  return FitRidgeRegression(stats, 0.0);
}

StatusOr<LinearRegressionModel> FitRidgeRegression(const SufStats& stats,
                                                   double lambda) {
  if (lambda < 0.0) {
    return Status::InvalidArgument("ridge penalty must be non-negative");
  }
  if (stats.kind() == MatrixKind::kDiagonal) {
    return Status::InvalidArgument(
        "linear regression requires a triangular or full Q");
  }
  if (stats.d() < 2) {
    return Status::InvalidArgument(
        "regression stats must cover at least one predictor plus Y");
  }
  const size_t d = stats.d() - 1;  // last dimension is Y
  const double n = stats.n();
  if (n <= static_cast<double>(d) + 1.0) {
    return Status::InvalidArgument(
        "linear regression needs n > d + 1 observations");
  }

  // Assemble A = augmented X Xᵀ (with the implicit X0 = 1 row) and
  // b = augmented X Yᵀ from the sufficient statistics.
  linalg::Matrix a(d + 1, d + 1);
  linalg::Vector b(d + 1);
  a(0, 0) = n;
  b[0] = stats.L(d);  // Σ y
  for (size_t i = 0; i < d; ++i) {
    a(0, i + 1) = stats.L(i);
    a(i + 1, 0) = stats.L(i);
    b[i + 1] = stats.Q(i, d);  // Σ xᵢ y
    for (size_t j = 0; j < d; ++j) a(i + 1, j + 1) = stats.Q(i, j);
    a(i + 1, i + 1) += lambda;  // unpenalized intercept: row/col 0 untouched
  }

  LinearRegressionModel model;
  model.d = d;
  model.n = n;

  // Prefer Cholesky (A is SPD when X has full rank); fall back to LU
  // for borderline-conditioned inputs.
  StatusOr<linalg::CholeskyDecomposition> chol =
      linalg::CholeskyDecomposition::Compute(a);
  linalg::Matrix a_inv;
  if (chol.ok()) {
    NLQ_ASSIGN_OR_RETURN(model.beta, chol->Solve(b));
    NLQ_ASSIGN_OR_RETURN(a_inv, chol->Inverse());
  } else {
    NLQ_ASSIGN_OR_RETURN(linalg::LuDecomposition lu,
                         linalg::LuDecomposition::Compute(a));
    NLQ_ASSIGN_OR_RETURN(model.beta, lu.Solve(b));
    NLQ_ASSIGN_OR_RETURN(a_inv, lu.Inverse());
  }

  // SSE = Q_yy − βᵀ b; guard against tiny negative round-off.
  const double q_yy = stats.Q(d, d);
  model.sse = std::max(0.0, q_yy - linalg::Dot(model.beta, b));
  model.sst = std::max(0.0, q_yy - stats.L(d) * stats.L(d) / n);
  model.r2 = model.sst > 0.0 ? 1.0 - model.sse / model.sst : 0.0;

  // var(β) = (X Xᵀ)⁻¹ SSE / (n − d − 1)   (Section 3.1).
  const double dof = n - static_cast<double>(d) - 1.0;
  model.var_beta = a_inv * (model.sse / dof);
  return model;
}

}  // namespace nlq::stats
