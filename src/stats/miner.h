#ifndef NLQ_STATS_MINER_H_
#define NLQ_STATS_MINER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "stats/em.h"
#include "stats/kmeans.h"
#include "stats/linreg.h"
#include "stats/pca.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"

namespace nlq::stats {

/// How the in-DBMS pass computing n, L, Q is executed — the
/// implementation alternatives the paper compares.
enum class ComputeVia {
  kSql,        // one long interpreted SQL query (1 + d + |Q| SUM terms)
  kUdfList,    // aggregate UDF, list parameter passing
  kUdfString,  // aggregate UDF, string parameter passing
  kBlocks,     // partitioned nlq_block calls (d > kMaxUdfDims)
};

/// High-level analytics facade — the role Teradata Warehouse Miner
/// plays in the paper: it generates SQL/UDF statements, runs them
/// against the engine, and finishes the (tiny) model math client-side
/// with the linalg library.
class WarehouseMiner {
 public:
  explicit WarehouseMiner(engine::Database* db) : db_(db) {}

  engine::Database* db() const { return db_; }

  /// One-scan computation of (n, L, Q) over `columns` of `table`.
  StatusOr<SufStats> ComputeSufStats(const std::string& table,
                                     const std::vector<std::string>& columns,
                                     MatrixKind kind, ComputeVia via);

  /// GROUP BY variant: one SufStats per integer group value of
  /// `group_expr` (e.g. "j" or "i % 16"). kBlocks is not supported.
  StatusOr<std::map<int64_t, SufStats>> ComputeGroupedSufStats(
      const std::string& table, const std::vector<std::string>& columns,
      MatrixKind kind, ComputeVia via, const std::string& group_expr);

  /// Correlation matrix ρ over X1..Xd of `table`.
  StatusOr<linalg::Matrix> BuildCorrelation(const std::string& table, size_t d,
                                            ComputeVia via);

  /// Linear regression of `y_column` on `x_columns`.
  StatusOr<LinearRegressionModel> BuildLinearRegression(
      const std::string& table, const std::vector<std::string>& x_columns,
      const std::string& y_column, ComputeVia via);

  /// PCA with k components over X1..Xd.
  StatusOr<PcaModel> BuildPca(const std::string& table, size_t d, size_t k,
                              ComputeVia via,
                              PcaInput input = PcaInput::kCorrelation);

  /// DBMS-driven K-means: every iteration is ONE scan — a GROUP BY
  /// query whose group key is the clusterscore(...) nearest-centroid
  /// UDF expression and whose aggregate is nlq_list('diag', ...),
  /// exactly the paper's "recompute centroids and radiuses" usage.
  /// Temporary centroid tables are named <table>_KMC.
  StatusOr<KMeansModel> BuildKMeansInDbms(const std::string& table, size_t d,
                                          const KMeansOptions& options);

  /// In-DBMS classification-EM clustering (the hard-assignment EM of
  /// the paper's SQLEM lineage): like BuildKMeansInDbms, but each
  /// iteration assigns rows to the component with the highest
  /// posterior — clusterscore over gaussnll(x, μ_j, σ²_j) − ln W_j —
  /// and refits (μ, σ², W) from the grouped diagonal statistics.
  /// Still ONE scan per iteration. Temporary tables <table>_EM*.
  StatusOr<GaussianMixtureModel> BuildGaussianMixtureInDbms(
      const std::string& table, size_t d, const EmOptions& options);

  /// Scoring (Section 3.5): each writes `out_table` (replacing it)
  /// with one scored row per input row, in a single scan (clustering
  /// SQL needs the paper's two scans).
  Status ScoreLinearRegression(const std::string& x_table,
                               const LinearRegressionModel& model,
                               const std::string& out_table, bool use_udf);

  Status ScorePca(const std::string& x_table, const PcaModel& model,
                  const std::string& out_table, bool use_udf);

  Status ScoreKMeans(const std::string& x_table, const KMeansModel& model,
                     const std::string& out_table, bool use_udf);

 private:
  StatusOr<SufStats> ComputeViaBlocks(const std::string& table,
                                      const std::vector<std::string>& columns);

  engine::Database* db_;
};

}  // namespace nlq::stats

#endif  // NLQ_STATS_MINER_H_
