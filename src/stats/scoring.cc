#include "stats/scoring.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "stats/histogram.h"
#include "stats/naive_bayes.h"
#include "stats/nlq_udaf.h"
#include "udf/packing.h"

namespace nlq::stats {

using storage::DataType;
using storage::Datum;

namespace {

class PackPointUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "pack_point";
    return kName;
  }
  DataType return_type() const override { return DataType::kVarchar; }

  Status CheckArity(size_t num_args) const override {
    if (num_args == 0) {
      return Status::InvalidArgument("pack_point needs at least one argument");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    // A NULL component makes the whole packed point NULL, so the
    // consuming aggregate applies the same skip-row policy as the
    // list style — coercing to 0.0 here would silently bias L and Q
    // (caught by differential_query_test's list-vs-string sweep).
    for (const Datum& arg : args) {
      if (arg.is_null()) return Datum::Null(DataType::kVarchar);
    }
    // The run-time cast of floating point numbers to text the paper
    // identifies as the string-style overhead.
    std::string packed;
    packed.reserve(args.size() * 12);
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) packed.push_back(udf::kPackSeparator);
      AppendDouble(&packed, args[i].AsDouble());
    }
    return Datum::Varchar(std::move(packed));
  }
};

class LinearRegScoreUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "linearregscore";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }

  Status CheckArity(size_t num_args) const override {
    // d x-values + (d + 1) coefficients.
    if (num_args < 3 || num_args % 2 == 0) {
      return Status::InvalidArgument(
          "linearregscore(X1..Xd, b0, b1..bd) needs 2d+1 arguments");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    const size_t d = (args.size() - 1) / 2;
    double yhat = args[d].AsDouble();  // b0
    for (size_t a = 0; a < d; ++a) {
      yhat += args[d + 1 + a].AsDouble() * args[a].AsDouble();
    }
    return Datum::Double(yhat);
  }
};

class FaScoreUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "fascore";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }

  Status CheckArity(size_t num_args) const override {
    if (num_args < 3 || num_args % 3 != 0) {
      return Status::InvalidArgument(
          "fascore(X1..Xd, mu1..mud, l1..ld) needs 3d arguments");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    const size_t d = args.size() / 3;
    double score = 0.0;
    for (size_t a = 0; a < d; ++a) {
      score += (args[a].AsDouble() - args[d + a].AsDouble()) *
               args[2 * d + a].AsDouble();
    }
    return Datum::Double(score);
  }
};

class KMeansDistanceUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "kmeansdistance";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }

  Status CheckArity(size_t num_args) const override {
    if (num_args < 2 || num_args % 2 != 0) {
      return Status::InvalidArgument(
          "kmeansdistance(X1..Xd, c1..cd) needs 2d arguments");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    const size_t d = args.size() / 2;
    double dist = 0.0;
    for (size_t a = 0; a < d; ++a) {
      const double diff = args[a].AsDouble() - args[d + a].AsDouble();
      dist += diff * diff;
    }
    return Datum::Double(dist);
  }
};

class ClusterScoreUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "clusterscore";
    return kName;
  }
  DataType return_type() const override { return DataType::kInt64; }

  Status CheckArity(size_t num_args) const override {
    if (num_args == 0) {
      return Status::InvalidArgument(
          "clusterscore(d1, ..., dk) needs at least one distance");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < args.size(); ++j) {
      if (args[j].is_null()) continue;
      const double dist = args[j].AsDouble();
      if (dist < best_dist) {
        best_dist = dist;
        best = j + 1;  // the paper's J subscript is 1-based
      }
    }
    if (best == 0) return Datum::Null(DataType::kInt64);
    return Datum::Int64(static_cast<int64_t>(best));
  }
};

std::string ColumnList(const std::string& prefix, size_t d,
                       const char* base = "X") {
  std::string out;
  for (size_t a = 1; a <= d; ++a) {
    if (a > 1) out += ", ";
    if (!prefix.empty()) {
      out += prefix;
      out += '.';
    }
    out += base + std::to_string(a);
  }
  return out;
}

/// "T1.j = 1 AND T2.j = 2 AND ..." predicates for aliased model-table
/// copies (the paper's "cross-joined k times (with aliasing)").
std::string AliasPredicates(const std::string& alias_base, size_t k) {
  std::string out;
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) out += " AND ";
    out += StringPrintf("%s%zu.j = %zu", alias_base.c_str(), j, j);
  }
  return out;
}

std::string AliasedFromList(const std::string& table,
                            const std::string& alias_base, size_t k) {
  std::string out;
  for (size_t j = 1; j <= k; ++j) {
    out += StringPrintf(", %s %s%zu", table.c_str(), alias_base.c_str(), j);
  }
  return out;
}

}  // namespace

Status RegisterScoringUdfs(udf::UdfRegistry* registry) {
  NLQ_RETURN_IF_ERROR(registry->RegisterScalar(std::make_unique<PackPointUdf>()));
  NLQ_RETURN_IF_ERROR(
      registry->RegisterScalar(std::make_unique<LinearRegScoreUdf>()));
  NLQ_RETURN_IF_ERROR(registry->RegisterScalar(std::make_unique<FaScoreUdf>()));
  NLQ_RETURN_IF_ERROR(
      registry->RegisterScalar(std::make_unique<KMeansDistanceUdf>()));
  return registry->RegisterScalar(std::make_unique<ClusterScoreUdf>());
}

Status RegisterAllStatsUdfs(udf::UdfRegistry* registry) {
  NLQ_RETURN_IF_ERROR(RegisterNlqUdfs(registry));
  NLQ_RETURN_IF_ERROR(RegisterHistogramUdfs(registry));
  NLQ_RETURN_IF_ERROR(RegisterNaiveBayesUdfs(registry));
  return RegisterScoringUdfs(registry);
}

std::string LinRegScoreUdfQuery(const std::string& x_table,
                                const std::string& beta_table, size_t d,
                                const std::string& id_column) {
  std::string sql = "SELECT " + id_column + ", linearregscore(";
  sql += ColumnList(x_table, d);
  sql += ", b0";
  for (size_t a = 1; a <= d; ++a) sql += StringPrintf(", b%zu", a);
  sql += ") AS yhat FROM " + x_table + ", " + beta_table;
  return sql;
}

std::string LinRegScoreSqlQuery(const std::string& x_table,
                                const std::string& beta_table, size_t d,
                                const std::string& id_column) {
  std::string sql = "SELECT " + id_column + ", b0";
  for (size_t a = 1; a <= d; ++a) {
    sql += StringPrintf(" + b%zu * X%zu", a, a);
  }
  sql += " AS yhat FROM " + x_table + ", " + beta_table;
  return sql;
}

std::string PcaScoreUdfQuery(const std::string& x_table,
                             const std::string& mu_table,
                             const std::string& lambda_table, size_t d,
                             size_t k, const std::string& id_column) {
  std::string sql = "SELECT " + id_column;
  for (size_t j = 1; j <= k; ++j) {
    sql += StringPrintf(", fascore(%s, %s, %s) AS f%zu",
                        ColumnList(x_table, d).c_str(),
                        ColumnList("M", d).c_str(),
                        ColumnList("L" + std::to_string(j), d).c_str(), j);
  }
  sql += " FROM " + x_table + ", " + mu_table + " M" +
         AliasedFromList(lambda_table, "L", k);
  sql += " WHERE " + AliasPredicates("L", k);
  return sql;
}

std::string PcaScoreSqlQuery(const std::string& x_table,
                             const std::string& mu_table,
                             const std::string& lambda_table, size_t d,
                             size_t k, const std::string& id_column) {
  std::string sql = "SELECT " + id_column;
  for (size_t j = 1; j <= k; ++j) {
    sql += ", ";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) sql += " + ";
      sql += StringPrintf("(%s.X%zu - M.X%zu) * L%zu.X%zu",
                          x_table.c_str(), a, a, j, a);
    }
    sql += StringPrintf(" AS f%zu", j);
  }
  sql += " FROM " + x_table + ", " + mu_table + " M" +
         AliasedFromList(lambda_table, "L", k);
  sql += " WHERE " + AliasPredicates("L", k);
  return sql;
}

std::string KMeansScoreUdfQuery(const std::string& x_table,
                                const std::string& c_table, size_t d, size_t k,
                                const std::string& id_column) {
  std::string sql = "SELECT " + id_column + ", clusterscore(";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) sql += ", ";
    sql += StringPrintf("kmeansdistance(%s, %s)",
                        ColumnList(x_table, d).c_str(),
                        ColumnList("C" + std::to_string(j), d).c_str());
  }
  sql += ") AS j FROM " + x_table + AliasedFromList(c_table, "C", k);
  sql += " WHERE " + AliasPredicates("C", k);
  return sql;
}

std::string KMeansDistancesSqlQuery(const std::string& x_table,
                                    const std::string& c_table, size_t d,
                                    size_t k, const std::string& id_column) {
  std::string sql = "SELECT " + id_column;
  for (size_t j = 1; j <= k; ++j) {
    sql += ", ";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) sql += " + ";
      sql += StringPrintf("(%s.X%zu - C%zu.X%zu) * (%s.X%zu - C%zu.X%zu)",
                          x_table.c_str(), a, j, a, x_table.c_str(), a, j, a);
    }
    sql += StringPrintf(" AS d%zu", j);
  }
  sql += " FROM " + x_table + AliasedFromList(c_table, "C", k);
  sql += " WHERE " + AliasPredicates("C", k);
  return sql;
}

std::string KMeansAssignSqlQuery(const std::string& distances_table, size_t k,
                                 const std::string& id_column) {
  std::string sql = "SELECT " + id_column + ", CASE";
  for (size_t j = 1; j < k; ++j) {
    sql += " WHEN ";
    bool first = true;
    for (size_t other = 1; other <= k; ++other) {
      if (other == j) continue;
      if (!first) sql += " AND ";
      first = false;
      sql += StringPrintf("d%zu <= d%zu", j, other);
    }
    sql += StringPrintf(" THEN %zu", j);
  }
  sql += StringPrintf(" ELSE %zu END AS j FROM %s", k,
                      distances_table.c_str());
  return sql;
}

}  // namespace nlq::stats
