#include "stats/naive_bayes.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "stats/model_tables.h"

namespace nlq::stats {

using storage::DataType;
using storage::Datum;

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

class GaussNllUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "gaussnll";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }

  Status CheckArity(size_t num_args) const override {
    if (num_args < 3 || num_args % 3 != 0) {
      return Status::InvalidArgument(
          "gaussnll(X1..Xd, mu1..mud, var1..vard) needs 3d arguments");
    }
    return Status::OK();
  }

  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    const size_t d = args.size() / 3;
    double nll = 0.5 * static_cast<double>(d) * kLog2Pi;
    for (size_t a = 0; a < d; ++a) {
      const double var = args[2 * d + a].AsDouble();
      if (var <= 0.0) {
        return Status::InvalidArgument("gaussnll: variance must be positive");
      }
      const double diff = args[a].AsDouble() - args[d + a].AsDouble();
      nll += 0.5 * (std::log(var) + diff * diff / var);
    }
    return Datum::Double(nll);
  }
};

}  // namespace

double NaiveBayesModel::LogJoint(const double* x, size_t j) const {
  double log_joint = std::log(std::max(priors[j], 1e-300));
  for (size_t a = 0; a < d; ++a) {
    const double var = variances(j, a);
    const double diff = x[a] - means(j, a);
    log_joint -= 0.5 * (kLog2Pi + std::log(var) + diff * diff / var);
  }
  return log_joint;
}

size_t NaiveBayesModel::Classify(const double* x) const {
  size_t best = 0;
  double best_joint = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < k; ++j) {
    const double joint = LogJoint(x, j);
    if (joint > best_joint) {
      best_joint = joint;
      best = j;
    }
  }
  return best;
}

StatusOr<NaiveBayesModel> FitNaiveBayes(
    const std::map<int64_t, SufStats>& per_class, double variance_floor) {
  if (per_class.empty()) {
    return Status::InvalidArgument("naive Bayes needs at least one class");
  }
  NaiveBayesModel model;
  model.k = per_class.size();
  model.d = per_class.begin()->second.d();
  model.means = linalg::Matrix(model.k, model.d);
  model.variances = linalg::Matrix(model.k, model.d);
  model.priors.assign(model.k, 0.0);

  double total_n = 0.0;
  for (const auto& [label, stats] : per_class) total_n += stats.n();
  if (total_n <= 0.0) {
    return Status::InvalidArgument("naive Bayes needs training rows");
  }

  size_t j = 0;
  for (const auto& [label, stats] : per_class) {
    if (stats.d() != model.d) {
      return Status::InvalidArgument(
          "per-class statistics disagree on dimensionality");
    }
    if (stats.n() <= 0.0) {
      return Status::InvalidArgument(StringPrintf(
          "class %lld has no training rows", static_cast<long long>(label)));
    }
    model.class_labels.push_back(label);
    model.priors[j] = stats.n() / total_n;
    for (size_t a = 0; a < model.d; ++a) {
      const double mean = stats.L(a) / stats.n();
      model.means(j, a) = mean;
      model.variances(j, a) = std::max(
          variance_floor, stats.Q(a, a) / stats.n() - mean * mean);
    }
    ++j;
  }
  return model;
}

Status RegisterNaiveBayesUdfs(udf::UdfRegistry* registry) {
  return registry->RegisterScalar(std::make_unique<GaussNllUdf>());
}

Status StoreNaiveBayesTable(engine::Database* db, const std::string& name,
                            const NaiveBayesModel& model) {
  NLQ_RETURN_IF_ERROR(DropTableIfExists(db, name));
  std::string ddl = "CREATE TABLE " + name + " (j BIGINT, prior DOUBLE";
  for (size_t a = 1; a <= model.d; ++a) {
    ddl += StringPrintf(", M%zu DOUBLE", a);
  }
  for (size_t a = 1; a <= model.d; ++a) {
    ddl += StringPrintf(", V%zu DOUBLE", a);
  }
  ddl += ")";
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(ddl));

  for (size_t j = 0; j < model.k; ++j) {
    std::string insert =
        "INSERT INTO " + name + StringPrintf(" VALUES (%zu, ", j + 1);
    AppendDouble(&insert, model.priors[j]);
    for (size_t a = 0; a < model.d; ++a) {
      insert += ", ";
      AppendDouble(&insert, model.means(j, a));
    }
    for (size_t a = 0; a < model.d; ++a) {
      insert += ", ";
      AppendDouble(&insert, model.variances(j, a));
    }
    insert += ")";
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(insert));
  }
  return Status::OK();
}

std::string NaiveBayesScoreUdfQuery(const std::string& x_table,
                                    const std::string& nb_table, size_t d,
                                    size_t k, const std::string& id_column) {
  std::string sql = "SELECT " + id_column + ", clusterscore(";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) sql += ", ";
    sql += "gaussnll(";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) sql += ", ";
      sql += StringPrintf("%s.X%zu", x_table.c_str(), a);
    }
    for (size_t a = 1; a <= d; ++a) {
      sql += StringPrintf(", N%zu.M%zu", j, a);
    }
    for (size_t a = 1; a <= d; ++a) {
      sql += StringPrintf(", N%zu.V%zu", j, a);
    }
    sql += StringPrintf(") - ln(N%zu.prior)", j);
  }
  sql += ") AS j FROM " + x_table;
  for (size_t j = 1; j <= k; ++j) {
    sql += StringPrintf(", %s N%zu", nb_table.c_str(), j);
  }
  sql += " WHERE ";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) sql += " AND ";
    sql += StringPrintf("N%zu.j = %zu", j, j);
  }
  return sql;
}


std::string NaiveBayesNllSqlQuery(const std::string& x_table,
                                  const std::string& nb_table, size_t d,
                                  size_t k, const std::string& id_column) {
  std::string sql = "SELECT " + id_column;
  for (size_t j = 1; j <= k; ++j) {
    sql += ", 0.5 * (";
    for (size_t a = 1; a <= d; ++a) {
      if (a > 1) sql += " + ";
      sql += StringPrintf(
          "ln(N%zu.V%zu) + (%s.X%zu - N%zu.M%zu) * (%s.X%zu - N%zu.M%zu) / "
          "N%zu.V%zu",
          j, a, x_table.c_str(), a, j, a, x_table.c_str(), a, j, a, j, a);
    }
    sql += StringPrintf(") - ln(N%zu.prior) AS d%zu", j, j);
  }
  sql += " FROM " + x_table;
  for (size_t j = 1; j <= k; ++j) {
    sql += StringPrintf(", %s N%zu", nb_table.c_str(), j);
  }
  sql += " WHERE ";
  for (size_t j = 1; j <= k; ++j) {
    if (j > 1) sql += " AND ";
    sql += StringPrintf("N%zu.j = %zu", j, j);
  }
  return sql;
}

}  // namespace nlq::stats
