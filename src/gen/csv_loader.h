#ifndef NLQ_GEN_CSV_LOADER_H_
#define NLQ_GEN_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "storage/schema.h"

namespace nlq::gen {

/// Bulk-loads a comma-separated text file into a new table. Field
/// types follow `schema`; empty fields load as NULL. This closes the
/// loop with connect::OdbcExporter — a table exported to text can be
/// re-imported bit-exactly (shortest-round-trip double printing).
///
/// Replaces any existing table named `table_name`. Returns the number
/// of rows loaded. Rows whose field count does not match the schema
/// fail the load with ParseError.
StatusOr<uint64_t> LoadCsvIntoTable(engine::Database* db,
                                    const std::string& table_name,
                                    const storage::Schema& schema,
                                    const std::string& path);

}  // namespace nlq::gen

#endif  // NLQ_GEN_CSV_LOADER_H_
