#include "gen/csv_loader.h"

#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "storage/partitioned_table.h"

namespace nlq::gen {
namespace {

StatusOr<storage::Datum> ParseField(std::string_view field,
                                    storage::DataType type) {
  if (field.empty()) return storage::Datum::Null(type);
  switch (type) {
    case storage::DataType::kDouble: {
      NLQ_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return storage::Datum::Double(v);
    }
    case storage::DataType::kInt64: {
      NLQ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return storage::Datum::Int64(v);
    }
    case storage::DataType::kVarchar:
      return storage::Datum::Varchar(std::string(field));
  }
  return Status::Internal("unhandled column type");
}

}  // namespace

StatusOr<uint64_t> LoadCsvIntoTable(engine::Database* db,
                                    const std::string& table_name,
                                    const storage::Schema& schema,
                                    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  if (db->catalog().HasTable(table_name)) {
    const Status dropped = db->catalog().DropTable(table_name);
    if (!dropped.ok()) {
      std::fclose(file);
      return dropped;
    }
  }
  auto created = db->catalog().CreateTable(table_name, schema);
  if (!created.ok()) {
    std::fclose(file);
    return created.status();
  }
  storage::PartitionedTable* table = created.value();

  uint64_t rows = 0;
  storage::Row row(schema.num_columns());
  std::string pending;
  char buffer[64 * 1024];

  auto process_line = [&](std::string_view line) -> Status {
    if (line.empty()) return Status::OK();
    const std::vector<std::string_view> fields = SplitString(line, ',');
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError(StringPrintf(
          "row %llu has %zu fields, schema has %zu columns",
          static_cast<unsigned long long>(rows + 1), fields.size(),
          schema.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      StatusOr<storage::Datum> parsed =
          ParseField(fields[c], schema.column(c).type);
      if (!parsed.ok()) {
        return Status::ParseError(StringPrintf(
            "row %llu, column '%s': %s",
            static_cast<unsigned long long>(rows + 1),
            schema.column(c).name.c_str(), parsed.status().message().c_str()));
      }
      row[c] = std::move(parsed).value();
    }
    table->AppendRowUnchecked(row);
    ++rows;
    return Status::OK();
  };

  for (;;) {
    const size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    if (got == 0) break;
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (buffer[i] != '\n') continue;
      Status s;
      if (pending.empty()) {
        s = process_line(std::string_view(buffer + start, i - start));
      } else {
        pending.append(buffer + start, i - start);
        s = process_line(pending);
        pending.clear();
      }
      if (!s.ok()) {
        std::fclose(file);
        return s;
      }
      start = i + 1;
    }
    pending.append(buffer + start, got - start);
  }
  std::fclose(file);
  if (!pending.empty()) {
    NLQ_RETURN_IF_ERROR(process_line(pending));
  }
  return rows;
}

}  // namespace nlq::gen
