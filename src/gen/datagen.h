#ifndef NLQ_GEN_DATAGEN_H_
#define NLQ_GEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/database.h"
#include "linalg/matrix.h"

namespace nlq::gen {

/// Synthetic data matching the paper's Section 4 "Data Sets": a
/// mixture of k normal distributions with means in [0, 100] and
/// standard deviation around 10 per dimension, with about 15% of
/// points being uniformly distributed noise.
struct MixtureOptions {
  uint64_t n = 10000;
  size_t d = 8;
  size_t num_clusters = 16;       // the paper's k = 16 distributions
  double mean_lo = 0.0;
  double mean_hi = 100.0;
  double stddev = 10.0;
  double noise_fraction = 0.15;   // uniform noise points
  uint64_t seed = 42;

  /// Seed for the data-set *structure* (cluster means and the true
  /// regression coefficients). 0 means "same as seed". Distinct train
  /// and test sets from the same population use the same
  /// structure_seed with different seeds.
  uint64_t structure_seed = 0;

  /// When true an extra column Y = β₀ + βᵀx + ε is generated so the
  /// same table serves linear regression experiments.
  bool with_y = false;
  double y_noise_stddev = 5.0;
};

/// Streaming generator (deterministic for a given options.seed).
class MixtureGenerator {
 public:
  explicit MixtureGenerator(const MixtureOptions& options);

  const MixtureOptions& options() const { return options_; }

  /// Ground-truth cluster means (num_clusters x d).
  const linalg::Matrix& cluster_means() const { return means_; }

  /// Ground-truth regression coefficients (d+1, intercept first).
  const linalg::Vector& true_beta() const { return beta_; }

  /// Fills `x` (size d) with the next point; when options.with_y is
  /// set also produces `y` (may be null otherwise). Returns the
  /// 0-based index of the generating cluster, or -1 for noise points.
  int NextPoint(double* x, double* y);

 private:
  MixtureOptions options_;
  Random rng_;
  linalg::Matrix means_;
  linalg::Vector beta_;
};

/// Creates table `name` in `db` with schema X(i, X1..Xd[, Y]) and
/// bulk-loads `options.n` generated rows. Replaces any existing
/// table. Returns the row count.
StatusOr<uint64_t> GenerateDataSetTable(engine::Database* db,
                                        const std::string& name,
                                        const MixtureOptions& options);

/// Generates points in memory (for the linalg-level tests and the
/// in-memory K-means baseline).
std::vector<linalg::Vector> GeneratePoints(const MixtureOptions& options);

/// Splits `source` into two tables by the deterministic id rule
/// `i % modulo = remainder` (test) vs the rest (train) — the standard
/// in-database train/test split, done with two INSERT ... SELECT
/// statements. Replaces existing target tables. Returns
/// {train_rows, test_rows}.
StatusOr<std::pair<uint64_t, uint64_t>> SplitDataSetTable(
    engine::Database* db, const std::string& source,
    const std::string& train_name, const std::string& test_name,
    int64_t modulo = 5, int64_t remainder = 0);

}  // namespace nlq::gen

#endif  // NLQ_GEN_DATAGEN_H_
