#include "gen/datagen.h"

#include "common/strings.h"
#include "storage/partitioned_table.h"

namespace nlq::gen {

MixtureGenerator::MixtureGenerator(const MixtureOptions& options)
    : options_(options), rng_(options.seed) {
  // The population structure (means, true beta) comes from its own
  // seed so independent train/test streams share the same model.
  Random structure_rng(options.structure_seed != 0 ? options.structure_seed
                                                   : options.seed);
  means_ = linalg::Matrix(options_.num_clusters, options_.d);
  for (size_t j = 0; j < options_.num_clusters; ++j) {
    for (size_t a = 0; a < options_.d; ++a) {
      means_(j, a) =
          structure_rng.NextUniform(options_.mean_lo, options_.mean_hi);
    }
  }
  beta_.resize(options_.d + 1);
  for (size_t a = 0; a <= options_.d; ++a) {
    beta_[a] = structure_rng.NextUniform(-2.0, 2.0);
  }
}

int MixtureGenerator::NextPoint(double* x, double* y) {
  int cluster = -1;
  if (rng_.NextDouble() < options_.noise_fraction) {
    // Uniform noise over the mean range (±2σ margin).
    const double lo = options_.mean_lo - 2.0 * options_.stddev;
    const double hi = options_.mean_hi + 2.0 * options_.stddev;
    for (size_t a = 0; a < options_.d; ++a) {
      x[a] = rng_.NextUniform(lo, hi);
    }
  } else {
    cluster = static_cast<int>(rng_.NextUint64(options_.num_clusters));
    for (size_t a = 0; a < options_.d; ++a) {
      x[a] = rng_.NextGaussian(means_(static_cast<size_t>(cluster), a),
                               options_.stddev);
    }
  }
  if (options_.with_y && y != nullptr) {
    double value = beta_[0];
    for (size_t a = 0; a < options_.d; ++a) value += beta_[a + 1] * x[a];
    *y = value + rng_.NextGaussian(0.0, options_.y_noise_stddev);
  }
  return cluster;
}

StatusOr<uint64_t> GenerateDataSetTable(engine::Database* db,
                                        const std::string& name,
                                        const MixtureOptions& options) {
  if (db->catalog().HasTable(name)) {
    NLQ_RETURN_IF_ERROR(db->catalog().DropTable(name));
  }
  NLQ_ASSIGN_OR_RETURN(
      storage::PartitionedTable * table,
      db->catalog().CreateTable(
          name, storage::Schema::DataSet(options.d, options.with_y)));

  MixtureGenerator generator(options);
  std::vector<double> x(options.d);
  double y = 0.0;
  storage::Row row(1 + options.d + (options.with_y ? 1 : 0));
  for (uint64_t i = 1; i <= options.n; ++i) {
    generator.NextPoint(x.data(), &y);
    row[0] = storage::Datum::Int64(static_cast<int64_t>(i));
    for (size_t a = 0; a < options.d; ++a) {
      row[1 + a] = storage::Datum::Double(x[a]);
    }
    if (options.with_y) row[1 + options.d] = storage::Datum::Double(y);
    table->AppendRowUnchecked(row);
  }
  return table->num_rows();
}

std::vector<linalg::Vector> GeneratePoints(const MixtureOptions& options) {
  MixtureGenerator generator(options);
  std::vector<linalg::Vector> points;
  points.reserve(options.n);
  linalg::Vector x(options.d);
  for (uint64_t i = 0; i < options.n; ++i) {
    generator.NextPoint(x.data(), nullptr);
    points.push_back(x);
  }
  return points;
}


StatusOr<std::pair<uint64_t, uint64_t>> SplitDataSetTable(
    engine::Database* db, const std::string& source,
    const std::string& train_name, const std::string& test_name,
    int64_t modulo, int64_t remainder) {
  if (modulo < 2 || remainder < 0 || remainder >= modulo) {
    return Status::InvalidArgument(
        "split requires modulo >= 2 and 0 <= remainder < modulo");
  }
  for (const std::string* name : {&train_name, &test_name}) {
    if (db->catalog().HasTable(*name)) {
      NLQ_RETURN_IF_ERROR(db->catalog().DropTable(*name));
    }
  }
  const std::string mod = std::to_string(modulo);
  const std::string rem = std::to_string(remainder);
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(
      "CREATE TABLE " + test_name + " AS SELECT * FROM " + source +
      " WHERE i % " + mod + " = " + rem));
  NLQ_RETURN_IF_ERROR(db->ExecuteCommand(
      "CREATE TABLE " + train_name + " AS SELECT * FROM " + source +
      " WHERE i % " + mod + " <> " + rem));
  NLQ_ASSIGN_OR_RETURN(double train_rows,
                       db->QueryDouble("SELECT count(*) FROM " + train_name));
  NLQ_ASSIGN_OR_RETURN(double test_rows,
                       db->QueryDouble("SELECT count(*) FROM " + test_name));
  return std::make_pair(static_cast<uint64_t>(train_rows),
                        static_cast<uint64_t>(test_rows));
}

}  // namespace nlq::gen
