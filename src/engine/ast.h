#ifndef NLQ_ENGINE_AST_H_
#define NLQ_ENGINE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace nlq::engine {

/// Unbound expression AST produced by the parser.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,     // number / string / NULL
  kColumnRef,   // [table.]column
  kStar,        // * (only valid inside COUNT(*) / SELECT *)
  kUnary,       // - expr | NOT expr
  kBinary,      // arithmetic / comparison / AND / OR
  kFunction,    // name(args...) — builtin scalar, scalar UDF or aggregate
  kCase,        // CASE WHEN ... THEN ... [ELSE ...] END
  kIsNull,      // expr IS [NOT] NULL
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNegate, kNot };

struct CaseBranch;

struct Expr {
  ExprKind kind;

  // kLiteral
  storage::Datum literal;

  // kColumnRef
  std::string table;   // optional qualifier (alias), may be empty
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  // kFunction
  std::string function_name;  // lower-cased
  std::vector<ExprPtr> args;

  // kCase
  std::vector<CaseBranch> branches;
  ExprPtr else_expr;  // may be null

  // kIsNull
  bool is_null_negated = false;  // IS NOT NULL

  /// Canonical text form; used for GROUP BY ↔ SELECT matching and
  /// for generated result column names.
  std::string ToString() const;

  /// Deep copy.
  ExprPtr Clone() const;
};

struct CaseBranch {
  ExprPtr condition;
  ExprPtr result;
};

/// Convenience constructors used by the parser and by tests.
ExprPtr MakeLiteral(storage::Datum value);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeStar();
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

/// One item in a SELECT list.
struct SelectItem {
  ExprPtr expr;        // null for bare `*`
  std::string alias;   // empty if none
};

/// One table reference in FROM (comma list and CROSS JOIN are
/// equivalent; only cross products are supported — the paper's scoring
/// queries cross-join X with tiny model tables).
struct TableRef {
  std::string table_name;
  std::string alias;  // empty -> table name itself
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;        // may be empty (SELECT 1+1)
  ExprPtr where;                     // may be null
  std::vector<ExprPtr> group_by;     // may be empty
  ExprPtr having;                    // may be null (aggregate filter)
  std::vector<OrderByItem> order_by; // may be empty
  int64_t limit = -1;                // -1 = no limit
};

struct CreateTableStatement {
  std::string table_name;
  storage::Schema schema;                    // for column-list form
  std::unique_ptr<SelectStatement> as_select;  // for CREATE TABLE AS
};

struct InsertStatement {
  std::string table_name;
  std::vector<std::vector<ExprPtr>> value_rows;  // INSERT ... VALUES
  std::unique_ptr<SelectStatement> select;       // INSERT ... SELECT
};

struct DropTableStatement {
  std::string table_name;
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kInsert,
  kDropTable,
  kExplain,
};

struct Statement {
  StatementKind kind;
  /// The SELECT body; for kExplain this is the statement being
  /// explained (EXPLAIN covers SELECT only).
  std::unique_ptr<SelectStatement> select;
  /// kExplain only: EXPLAIN ANALYZE executes the statement and
  /// renders actuals; plain EXPLAIN renders the plan without running.
  bool explain_analyze = false;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<DropTableStatement> drop_table;
};

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_AST_H_
