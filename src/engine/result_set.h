#ifndef NLQ_ENGINE_RESULT_SET_H_
#define NLQ_ENGINE_RESULT_SET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace nlq::engine {

/// Materialized query result: output schema plus row data.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(storage::Schema schema, std::vector<storage::Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const storage::Schema& schema() const { return schema_; }
  const std::vector<storage::Row>& rows() const { return rows_; }
  std::vector<storage::Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Value accessors with bounds checking left to the caller in
  /// release builds (asserts in debug).
  const storage::Datum& At(size_t row, size_t col) const {
    return rows_[row][col];
  }

  /// Numeric convenience accessor.
  double GetDouble(size_t row, size_t col) const {
    return rows_[row][col].AsDouble();
  }

  /// Column lookup + numeric read; errors if the column is missing.
  StatusOr<double> GetDouble(size_t row, const std::string& column) const {
    NLQ_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
    return rows_[row][idx].AsDouble();
  }

  /// Pretty-prints up to `max_rows` rows (debugging / examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  storage::Schema schema_;
  std::vector<storage::Row> rows_;
};

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_RESULT_SET_H_
