#include "engine/result_set.h"

namespace nlq::engine {

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema_.column(c).name;
  }
  out += "\n";
  const size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace nlq::engine
