#include "engine/ast.h"

namespace nlq::engine {
namespace {

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == storage::DataType::kVarchar &&
          !literal.is_null()) {
        return "'" + literal.string_value() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNegate ? "-" : "NOT ") + "(" +
             left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpText(binary_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& b : branches) {
        out += " WHEN " + b.condition->ToString() + " THEN " +
               b.result->ToString();
      }
      if (else_expr) out += " ELSE " + else_expr->ToString();
      return out + " END";
    }
    case ExprKind::kIsNull:
      return "(" + left->ToString() + (is_null_negated ? " IS NOT NULL" : " IS NULL") + ")";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  out->function_name = function_name;
  for (const auto& a : args) out->args.push_back(a->Clone());
  for (const auto& b : branches) {
    CaseBranch nb;
    nb.condition = b.condition->Clone();
    nb.result = b.result->Clone();
    out->branches.push_back(std::move(nb));
  }
  if (else_expr) out->else_expr = else_expr->Clone();
  out->is_null_negated = is_null_negated;
  return out;
}

ExprPtr MakeLiteral(storage::Datum value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = std::move(name);
  e->args = std::move(args);
  return e;
}

}  // namespace nlq::engine
