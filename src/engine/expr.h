#ifndef NLQ_ENGINE_EXPR_H_
#define NLQ_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/ast.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "udf/udf.h"

namespace nlq::engine {

namespace exec {
class BytecodeBuilder;
}  // namespace exec

/// Row context a bound expression evaluates against.
///
/// Row-level expressions read `input` (the joined input row).
/// Post-aggregation projections read `keys` (GROUP BY values) and
/// `aggs` (aggregate results). `error` collects the first evaluation
/// error (e.g. a scalar UDF failure); expression evaluation itself
/// returns NULL on SQL-level soft errors such as division by zero.
struct EvalContext {
  const storage::Row* input = nullptr;
  const storage::Row* keys = nullptr;
  const storage::Row* aggs = nullptr;
  Status* error = nullptr;
};

/// A bound, directly evaluable expression tree. Evaluation is
/// deliberately *interpreted* (virtual dispatch per node per row):
/// this models the paper's observation that "SQL arithmetic
/// expressions are interpreted at run-time, whereas UDF arithmetic
/// expressions are compiled".
class BoundExpr {
 public:
  virtual ~BoundExpr() = default;

  /// Evaluates against `ctx`; returns NULL on soft errors and reports
  /// hard errors through ctx.error.
  virtual storage::Datum Eval(const EvalContext& ctx) const = 0;

  /// Batch evaluation entry point for the morsel executor: evaluates
  /// this expression against `rows[0..count)` writing one Datum per
  /// row into `out` (which must hold at least `count` slots). The
  /// first hard error is reported through `error`; evaluation of the
  /// remaining rows may still run (results past an error are
  /// discarded by the caller).
  ///
  /// The base implementation loops `Eval` row-by-row; hot nodes
  /// (column refs, literals, arithmetic/comparison) override it to
  /// hoist the virtual dispatch and operator switch out of the
  /// per-row path — the batched analogue of the paper's "compiled UDF
  /// vs interpreted SQL" gap.
  virtual void EvalBatch(const storage::Row* rows, size_t count,
                         Status* error, storage::Datum* out) const;

  /// Static result type of this expression.
  virtual storage::DataType result_type() const = 0;

  /// Fast-path introspection for the columnar planner: if this node is
  /// a bare input column reference, stores its slot and returns true.
  virtual bool AsInputRef(size_t* slot) const {
    (void)slot;
    return false;
  }

  /// If this node is a literal, stores its value and returns true.
  virtual bool AsLiteralValue(storage::Datum* value) const {
    (void)value;
    return false;
  }

  /// Emits this subtree into `builder` for the vectorized bytecode
  /// path (engine/exec/bytecode.h), returning the builder ValueId of
  /// the result or a negative value when the construct cannot compile
  /// (the default: scalar UDFs, key/agg refs, VARCHAR operands stay
  /// interpreted).
  virtual int EmitBytecode(exec::BytecodeBuilder* builder) const {
    (void)builder;
    return -1;
  }
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Resolves unqualified/qualified column references against the
/// concatenated row of one or more FROM tables.
class BindingScope {
 public:
  /// Adds a table with alias; its columns occupy the next
  /// `schema.num_columns()` slots of the joined row.
  void AddTable(std::string alias, const storage::Schema* schema);

  /// Resolves `[table.]column`; InvalidArgument if ambiguous,
  /// NotFound if missing. Returns {slot, type}.
  StatusOr<std::pair<size_t, storage::DataType>> Resolve(
      const std::string& table, const std::string& column) const;

  /// Total number of slots in the joined row.
  size_t total_slots() const { return total_slots_; }

  /// All (qualified) columns in slot order, for SELECT *.
  std::vector<storage::Column> AllColumns() const;

 private:
  struct TableEntry {
    std::string alias;
    const storage::Schema* schema;
    size_t offset;
  };
  std::vector<TableEntry> tables_;
  size_t total_slots_ = 0;
};

/// One aggregate call extracted from a SELECT list during binding.
struct AggregateSpec {
  enum class Kind { kSum, kCount, kCountStar, kMin, kMax, kAvg, kUdf };
  Kind kind = Kind::kSum;
  const udf::AggregateUdf* udaf = nullptr;  // for kUdf
  std::vector<BoundExprPtr> args;           // row-level argument exprs
  storage::DataType result_type = storage::DataType::kDouble;
};

/// Output of binding a SELECT item in an aggregation query: the
/// expression reads KeyRef/AggRef slots instead of input columns.
struct BoundAggregation {
  std::vector<BoundExprPtr> key_exprs;   // row-level GROUP BY exprs
  std::vector<AggregateSpec> specs;      // aggregate calls, in slot order
  std::vector<BoundExprPtr> projections; // per SELECT item (keys/aggs ctx)
};

/// Binds a row-level expression (aggregates are rejected).
StatusOr<BoundExprPtr> BindRowExpr(const Expr& expr, const BindingScope& scope,
                                   const udf::UdfRegistry* registry);

/// Creates a bound reference to input slot `slot` directly (used for
/// positional ORDER BY over materialized results).
BoundExprPtr MakeBoundInputRef(size_t slot, storage::DataType type);

/// Returns true if `expr` contains an aggregate function call
/// (builtin or registered aggregate UDF).
bool ContainsAggregate(const Expr& expr, const udf::UdfRegistry* registry);

/// Binds the SELECT list of an aggregation query: group_by expressions
/// become key slots, aggregate calls become AggregateSpecs, and each
/// select item becomes a projection over (keys, aggs). Non-aggregated
/// column references must match a GROUP BY expression textually.
StatusOr<BoundAggregation> BindAggregation(
    const std::vector<const Expr*>& select_exprs,
    const std::vector<const Expr*>& group_by, const BindingScope& scope,
    const udf::UdfRegistry* registry);

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_EXPR_H_
