#ifndef NLQ_ENGINE_PARSER_H_
#define NLQ_ENGINE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "engine/ast.h"

namespace nlq::engine {

/// Parses one SQL statement (optionally `;`-terminated).
///
/// Supported grammar (the subset the paper's workloads need):
///   SELECT item[, ...] [FROM tref[, ...]] [WHERE expr]
///       [GROUP BY expr[, ...]] [ORDER BY expr [ASC|DESC][, ...]]
///       [LIMIT n]
///   CREATE TABLE name (col type[, ...])
///   CREATE TABLE name AS SELECT ...
///   INSERT INTO name VALUES (expr[, ...])[, (...)]
///   INSERT INTO name SELECT ...
///   DROP TABLE name
/// with expressions over + - * / %, comparisons, AND/OR/NOT,
/// CASE WHEN, IS [NOT] NULL, function calls, `t.col` references and
/// CROSS JOIN (equivalent to comma-separated FROM).
StatusOr<Statement> ParseStatement(std::string_view sql);

/// Parses a standalone expression (used by tests and by the scoring
/// SQL generators).
StatusOr<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_PARSER_H_
