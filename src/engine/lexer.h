#ifndef NLQ_ENGINE_LEXER_H_
#define NLQ_ENGINE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nlq::engine {

enum class TokenType {
  kIdentifier,   // X1, BETA, my_table
  kNumber,       // 12, 3.5, 1e-3
  kString,       // 'abc' (single quotes, '' escape)
  kSymbol,       // ( ) , * + - / . = < > <= >= <> ;
  kKeyword,      // reserved words, stored upper-case
  kEndOfInput,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type;
  std::string text;  // keyword text is upper-cased; identifiers keep case
  size_t offset;

  bool IsKeyword(std::string_view kw) const;
  bool IsSymbol(std::string_view sym) const;
};

/// Tokenizes a SQL statement. Fails on unterminated strings or
/// unexpected characters.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_LEXER_H_
