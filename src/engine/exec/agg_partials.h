#ifndef NLQ_ENGINE_EXEC_AGG_PARTIALS_H_
#define NLQ_ENGINE_EXEC_AGG_PARTIALS_H_

#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "engine/exec/column_stream.h"
#include "engine/exec/columnar_aggregate_node.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::engine::exec {

/// Shared INIT/ROW/MERGE/FINALIZE machinery of the columnar fast path,
/// factored out of ColumnarAggregateNode so the maintained-view
/// registry accumulates, merges and finalizes partial states through
/// the exact same code — identical code is the cheapest proof of
/// bit-identical results (see DESIGN.md section 13).

/// Builtin aggregate state; field-for-field the same struct (and the
/// same update rules) as the row path's, so both paths stay
/// byte-identical — see hash_aggregate_node.cc.
struct BuiltinAggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool seen = false;
};

/// One morsel's partial aggregation state (the row path keeps the same
/// triple per hash-table group; here there is exactly one global
/// group). Movable, not copyable: UDF state lives in owned heap
/// segments (deep-copy via ClonePartialInto).
struct PartialState {
  std::vector<BuiltinAggState> builtin;
  std::vector<std::unique_ptr<udf::HeapSegment>> heaps;
  std::vector<void*> udf_states;  // parallel to specs, null for builtins
};

/// Per-drain scratch reused across batches: widened / compacted double
/// spans and the skip mask.
struct SpanScratch {
  std::vector<std::vector<double>> cols;
  std::vector<const double*> spans;
  std::vector<uint8_t> keep;
};

/// Sizes `state` for `specs` and Init-s one heap segment + UDF state
/// per kUdf spec, charged against `memory` (nullptr = untracked).
Status InitPartial(const std::vector<ColumnarAggSpec>& specs,
                   MemoryTracker* memory, PartialState* state);

/// ROW phase of one span batch over every spec: CountStar adds the
/// batch's (post-filter) row count, UDF specs go through the skip-row
/// NULL compaction into AccumulateSpans, builtins run their tight span
/// loop. Exactly the dispatch ColumnarAggregateNode::Compute performs
/// per batch.
Status AccumulateSpecsBatch(const std::vector<ColumnarAggSpec>& specs,
                            const ColumnSpanBatch& batch, PartialState* state,
                            SpanScratch* scratch);

/// MERGE phase: folds `src` into `dst` (builtin += / min / max, UDF
/// Merge). Callers fold in morsel-index order for determinism.
Status MergePartial(const std::vector<ColumnarAggSpec>& specs,
                    PartialState* dst, const PartialState* src);

/// Deep copy: Init-s `dst` fresh and transplants `src` into it —
/// builtin states by assignment, UDF states by memcpy of their
/// relocatable block. Fails with Internal if any UDF spec's state is
/// not relocatable (AggregateUdf::RelocatableStateSize == 0); callers
/// gate on MaintainableSpecs first.
Status ClonePartialInto(const std::vector<ColumnarAggSpec>& specs,
                        MemoryTracker* memory, const PartialState& src,
                        PartialState* dst);

/// True when every spec's state can be kept and cloned across
/// statements: builtins always can; UDF specs need a relocatable state
/// block. Gate of maintained-view eligibility.
bool MaintainableSpecs(const std::vector<ColumnarAggSpec>& specs);

/// FINALIZE phase: one output Datum per spec, matching the row path's
/// finalization (Int64 counts, NULL-on-empty sums, result-type-cast
/// min/max, UDF Finalize).
StatusOr<storage::Row> FinalizePartial(
    const std::vector<ColumnarAggSpec>& specs, const PartialState& state);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_AGG_PARTIALS_H_
