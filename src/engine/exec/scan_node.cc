#include "engine/exec/scan_node.h"

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

class ScanStream : public ExecStream {
 public:
  ScanStream(storage::BatchScanner scanner, const QueryContext* ctx)
      : scanner_(std::move(scanner)), ctx_(ctx) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (ctx_ != nullptr) NLQ_RETURN_IF_ERROR(ctx_->CheckAlive());
    NLQ_FAILPOINT("partition_scan");
    const bool more = scanner_.Next(out);
    if (ctx_ != nullptr && ctx_->stats() != nullptr) {
      // Report the scanner's page counter as deltas so the query-wide
      // total stays exact no matter how many batches a page spans.
      const size_t decoded = scanner_.pages_decoded();
      ctx_->stats()->pages_decoded.fetch_add(decoded - pages_reported_,
                                             std::memory_order_relaxed);
      pages_reported_ = decoded;
    }
    if (!scanner_.status().ok()) return scanner_.status();
    return more;
  }

 private:
  storage::BatchScanner scanner_;
  const QueryContext* ctx_;
  size_t pages_reported_ = 0;
};

class ConstantStream : public ExecStream {
 public:
  explicit ConstantStream(size_t num_rows) : rows_left_(num_rows) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    while (rows_left_ > 0 && !out->full()) {
      out->AppendRow().clear();
      --rows_left_;
    }
    return !out->empty();
  }

 private:
  size_t rows_left_;
};

}  // namespace

ParallelScanNode::ParallelScanNode(const storage::PartitionedTable* table,
                                   std::string table_name,
                                   size_t batch_capacity, uint64_t morsel_rows,
                                   const QueryContext* ctx)
    : PlanNode(nullptr),
      table_(table),
      table_name_(std::move(table_name)),
      batch_capacity_(batch_capacity),
      morsel_rows_(morsel_rows),
      ctx_(ctx),
      grid_(BuildMorselGrid(*table, morsel_rows)) {}

std::string ParallelScanNode::annotation() const {
  return StringPrintf(
      "%s: %llu rows, %zu partitions, batch %zu, morsel %llu (%zu morsel(s))",
      table_name_.c_str(), static_cast<unsigned long long>(table_->num_rows()),
      table_->num_partitions(), batch_capacity_,
      static_cast<unsigned long long>(morsel_rows_), grid_.size());
}

size_t ParallelScanNode::output_width() const {
  return table_->schema().num_columns();
}

StatusOr<ExecStreamPtr> ParallelScanNode::OpenStreamImpl(size_t s) const {
  const Morsel& m = grid_[s];
  return ExecStreamPtr(new ScanStream(
      table_->ScanPartitionBatches(m.partition, m.begin, m.end), ctx_));
}

ConstantInputNode::ConstantInputNode(size_t num_rows)
    : PlanNode(nullptr), num_rows_(num_rows) {}

StatusOr<ExecStreamPtr> ConstantInputNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new ConstantStream(num_rows_));
}

}  // namespace nlq::engine::exec
