#include "engine/exec/limit_node.h"

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

class LimitStream : public ExecStream {
 public:
  LimitStream(ExecStreamPtr input, uint64_t limit)
      : input_(std::move(input)), left_(limit) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (left_ == 0) {
      out->Clear();
      return false;
    }
    NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(out));
    if (!more) return false;
    if (out->size() >= left_) {
      out->Truncate(static_cast<size_t>(left_));
      left_ = 0;
    } else {
      left_ -= out->size();
    }
    return !out->empty();
  }

 private:
  ExecStreamPtr input_;
  uint64_t left_;
};

}  // namespace

LimitNode::LimitNode(PlanNodePtr child, int64_t limit)
    : PlanNode(std::move(child)), limit_(limit) {}

std::string LimitNode::annotation() const {
  return StringPrintf("%lld rows", static_cast<long long>(limit_));
}

StatusOr<ExecStreamPtr> LimitNode::OpenStreamImpl(size_t) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr input, child_->OpenStream(0));
  return ExecStreamPtr(
      new LimitStream(std::move(input), static_cast<uint64_t>(limit_)));
}

}  // namespace nlq::engine::exec
