#ifndef NLQ_ENGINE_EXEC_MAINTAINED_VIEW_NODE_H_
#define NLQ_ENGINE_EXEC_MAINTAINED_VIEW_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "engine/exec/plan.h"
#include "engine/exec/view_registry.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// Leaf pipeline breaker serving an eligible global aggregate from the
/// maintained-view registry: refresh (delta-accumulate rows appended
/// past each partition watermark — O(delta), not O(n)), merge a clone
/// of the stored per-morsel partials in morsel-index order, finalize,
/// project. Planned instead of ColumnarScan→ColumnarAggregate when
/// view maintenance is on and the statement's shape is maintainable;
/// results are bit-identical to that pipeline by construction (shared
/// accumulate/merge/finalize code, same grid, same fold order).
class MaintainedViewNode : public PlanNode {
 public:
  /// `view_state` is the plan-time freshness annotation
  /// ("view=fresh delta=Δ of N row(s)" / "view=stale (seeding ...)").
  MaintainedViewNode(ViewRegistry* registry, ViewDescriptor descriptor,
                     std::vector<ColumnarAggSpec> specs,
                     std::vector<BoundExprPtr> projections, size_t num_output,
                     std::string view_state, ThreadPool* pool,
                     const QueryContext* ctx);

  const char* name() const override { return "MaintainedViewScan"; }
  std::string annotation() const override;
  size_t output_width() const override { return num_output_; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  /// Serves the aggregate values from the registry and applies the
  /// SELECT-list projections, returning the single output row.
  StatusOr<std::vector<storage::Row>> Compute() const;

 private:
  ViewRegistry* registry_;
  ViewDescriptor descriptor_;
  std::vector<ColumnarAggSpec> specs_;  // descriptor_.specs points here
  std::vector<BoundExprPtr> projections_;
  size_t num_output_;
  std::string view_state_;
  ThreadPool* pool_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_MAINTAINED_VIEW_NODE_H_
