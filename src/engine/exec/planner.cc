#include "engine/exec/planner.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/columnar_aggregate_node.h"
#include "engine/exec/columnar_scan_node.h"
#include "engine/exec/cross_join_node.h"
#include "engine/exec/filter_node.h"
#include "engine/exec/gather_node.h"
#include "engine/exec/hash_aggregate_node.h"
#include "engine/exec/limit_node.h"
#include "engine/exec/maintained_view_node.h"
#include "engine/exec/project_node.h"
#include "engine/exec/scan_node.h"
#include "engine/exec/sort_node.h"
#include "engine/exec/vector_filter_node.h"
#include "engine/exec/vector_hash_aggregate_node.h"
#include "engine/exec/vector_project_node.h"
#include "engine/expr.h"
#include "storage/partitioned_table.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::PartitionedTable;
using storage::Row;
using storage::Schema;

/// FROM-clause resolution: the first table drives the parallel scan;
/// the remaining (small model) tables are materialized for the cross
/// product.
struct FromInputs {
  PartitionedTable* driver = nullptr;
  std::vector<std::vector<Row>> small_tables;
  std::vector<const Schema*> small_schemas;
  std::vector<std::string> small_aliases;
  BindingScope scope;
  BoundExprPtr residual_where;  // WHERE after pushdown (may be null)

  std::vector<std::vector<std::string>> pushed_texts;  // per small table
  std::vector<std::string> residual_texts;
};

StatusOr<FromInputs> PrepareFrom(const SelectStatement& select,
                                 storage::Catalog& catalog) {
  FromInputs inputs;
  for (size_t t = 0; t < select.from.size(); ++t) {
    NLQ_ASSIGN_OR_RETURN(PartitionedTable * table,
                         catalog.GetTable(select.from[t].table_name));
    inputs.scope.AddTable(select.from[t].alias, &table->schema());
    if (t == 0) {
      inputs.driver = table;
    } else {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, table->ReadAllRows());
      inputs.small_tables.push_back(std::move(rows));
      inputs.small_schemas.push_back(&table->schema());
      inputs.small_aliases.push_back(select.from[t].alias);
    }
  }
  inputs.pushed_texts.resize(inputs.small_tables.size());
  return inputs;
}

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

/// Pushes WHERE conjuncts that reference only one materialized small
/// table down to that table (pre-filtering its rows before the cross
/// product). Without this, the paper's scoring pattern — X
/// cross-joined with a k-row model table k times under `Lj.j = j`
/// predicates — would enumerate k^k combinations per X row. This is
/// the cross-join analogue of the paper's Section 3.6 join
/// optimizations. The remaining conjuncts are bound against the full
/// scope into `inputs->residual_where`.
Status ApplyWherePushdown(const SelectStatement& select,
                          const udf::UdfRegistry* registry,
                          FromInputs* inputs) {
  if (!select.where) return Status::OK();
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(select.where.get(), &conjuncts);

  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    if (ContainsAggregate(*conjunct, registry)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    bool pushed = false;
    for (size_t s = 0; s < inputs->small_tables.size() && !pushed; ++s) {
      BindingScope single;
      single.AddTable(inputs->small_aliases[s], inputs->small_schemas[s]);
      StatusOr<BoundExprPtr> bound = BindRowExpr(*conjunct, single, registry);
      if (!bound.ok()) continue;  // references other tables; try next
      // Pre-filter the materialized rows.
      std::vector<Row> kept;
      Status error;
      EvalContext ctx;
      ctx.error = &error;
      for (Row& row : inputs->small_tables[s]) {
        ctx.input = &row;
        const Datum cond = bound.value()->Eval(ctx);
        if (!cond.is_null() && cond.AsDouble() != 0.0) {
          kept.push_back(std::move(row));
        }
      }
      NLQ_RETURN_IF_ERROR(error);
      inputs->small_tables[s] = std::move(kept);
      inputs->pushed_texts[s].push_back(conjunct->ToString());
      pushed = true;
    }
    if (!pushed) {
      residual.push_back(conjunct);
      inputs->residual_texts.push_back(conjunct->ToString());
    }
  }

  if (!residual.empty()) {
    // Re-AND the residual conjuncts and bind against the full scope.
    ExprPtr combined = residual[0]->Clone();
    for (size_t i = 1; i < residual.size(); ++i) {
      combined = MakeBinary(BinaryOp::kAnd, std::move(combined),
                            residual[i]->Clone());
    }
    NLQ_ASSIGN_OR_RETURN(inputs->residual_where,
                         BindRowExpr(*combined, inputs->scope, registry));
  }
  return Status::OK();
}

std::string ResultColumnName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr) {
    std::string name = item.expr->ToString();
    if (name.size() <= 64) return name;
  }
  return "col" + std::to_string(index + 1);
}

bool IsAggregateSelect(const SelectStatement& select,
                       const udf::UdfRegistry* registry) {
  if (!select.group_by.empty() || select.having != nullptr) return true;
  for (const auto& item : select.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr, registry)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Columnar fast path eligibility
// ---------------------------------------------------------------------------

/// Columnar fast-path plan fragment assembled by TryColumnarFastPath.
struct ColumnarCandidate {
  bool eligible = false;
  std::vector<size_t> slots;           // driver schema slots to decode
  std::vector<ColumnFilter> filters;   // cols are indices into `slots`
  std::vector<ColumnarAggSpec> specs;  // parallel to the bound specs
};

/// Projection index of `slot`, appending it on first use.
size_t ProjectSlot(std::vector<size_t>* slots, size_t slot) {
  for (size_t i = 0; i < slots->size(); ++i) {
    if ((*slots)[i] == slot) return i;
  }
  slots->push_back(slot);
  return slots->size() - 1;
}

/// Maps `lit <op> col` to the equivalent `col <op'> lit`; false for
/// non-comparison operators. The identity case doubles as the
/// is-a-comparison check.
bool MirrorComparison(BinaryOp op, bool swapped, BinaryOp* out) {
  switch (op) {
    case BinaryOp::kEq: *out = BinaryOp::kEq; return true;
    case BinaryOp::kNe: *out = BinaryOp::kNe; return true;
    case BinaryOp::kLt: *out = swapped ? BinaryOp::kGt : BinaryOp::kLt;
      return true;
    case BinaryOp::kLe: *out = swapped ? BinaryOp::kGe : BinaryOp::kLe;
      return true;
    case BinaryOp::kGt: *out = swapped ? BinaryOp::kLt : BinaryOp::kGt;
      return true;
    case BinaryOp::kGe: *out = swapped ? BinaryOp::kLe : BinaryOp::kGe;
      return true;
    default: return false;
  }
}

/// Extracts a non-NULL numeric literal, folding a leading unary minus
/// (the parser produces `-2` as kUnary(kNegate, kLiteral)).
bool NumericLiteral(const Expr& e, double* v) {
  if (e.kind == ExprKind::kUnary && e.unary_op == UnaryOp::kNegate &&
      e.left != nullptr) {
    if (!NumericLiteral(*e.left, v)) return false;
    *v = -*v;
    return true;
  }
  if (e.kind != ExprKind::kLiteral || e.literal.is_null() ||
      e.literal.type() == DataType::kVarchar) {
    return false;
  }
  *v = e.literal.AsDouble();
  return true;
}

/// Extracts one WHERE conjunct as a scan-pushable simple comparison
/// (`column <op> numeric-literal`, either operand order) against the
/// projected slot list. No slot is appended on failure.
bool TrySimpleSpanFilter(const Expr& conj, const BindingScope& scope,
                         std::vector<size_t>* slots, ColumnFilter* f) {
  if (conj.kind != ExprKind::kBinary) return false;
  const Expr* colref = conj.left.get();
  const Expr* lit = conj.right.get();
  bool swapped = false;
  if (colref->kind != ExprKind::kColumnRef) {
    std::swap(colref, lit);
    swapped = true;
  }
  if (colref->kind != ExprKind::kColumnRef ||
      !NumericLiteral(*lit, &f->value) ||
      !MirrorComparison(conj.binary_op, swapped, &f->op)) {
    return false;
  }
  StatusOr<std::pair<size_t, DataType>> resolved =
      scope.Resolve(colref->table, colref->column);
  if (!resolved.ok() || resolved.value().second == DataType::kVarchar) {
    return false;
  }
  f->col = ProjectSlot(slots, resolved.value().first);
  f->text = conj.ToString();
  return true;
}

/// Decides whether a bound global aggregate can run on the columnar
/// fast path, and if so reduces it to scan slots, pushed-down span
/// filters and ColumnarAggSpecs. Eligible queries aggregate a single
/// base table without GROUP BY / HAVING, every aggregate argument is a
/// bare numeric column reference (after an aggregate UDF's leading
/// literal arguments), and the WHERE clause — if any — is a
/// conjunction of `column <op> numeric-literal` comparisons. Anything
/// else stays on the row path.
ColumnarCandidate TryColumnarFastPath(const SelectStatement& select,
                                      const FromInputs& inputs,
                                      const BoundAggregation& agg,
                                      bool has_having) {
  ColumnarCandidate cand;
  if (inputs.driver == nullptr || !inputs.small_tables.empty()) return cand;
  if (!agg.key_exprs.empty() || has_having) return cand;

  if (select.where != nullptr) {
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(select.where.get(), &conjuncts);
    for (const Expr* conj : conjuncts) {
      ColumnFilter f;
      if (!TrySimpleSpanFilter(*conj, inputs.scope, &cand.slots, &f)) {
        return cand;
      }
      cand.filters.push_back(std::move(f));
    }
  }

  for (const AggregateSpec& spec : agg.specs) {
    ColumnarAggSpec cs;
    cs.kind = spec.kind;
    cs.udaf = spec.udaf;
    cs.result_type = spec.result_type;
    if (spec.kind == AggregateSpec::Kind::kUdf) {
      if (spec.udaf == nullptr || !spec.udaf->SupportsColumnarSpans()) {
        return cand;
      }
      size_t a = 0;
      storage::Datum lit;
      while (a < spec.args.size() && spec.args[a]->AsLiteralValue(&lit)) {
        cs.const_args.push_back(std::move(lit));
        ++a;
      }
      if (a == spec.args.size()) return cand;  // no column spans at all
      for (; a < spec.args.size(); ++a) {
        size_t slot = 0;
        if (!spec.args[a]->AsInputRef(&slot) ||
            spec.args[a]->result_type() == DataType::kVarchar) {
          return cand;
        }
        cs.arg_cols.push_back(ProjectSlot(&cand.slots, slot));
      }
    } else if (spec.kind != AggregateSpec::Kind::kCountStar) {
      size_t slot = 0;
      if (spec.args.size() != 1 || !spec.args[0]->AsInputRef(&slot) ||
          spec.args[0]->result_type() == DataType::kVarchar) {
        return cand;
      }
      cs.arg_cols.push_back(ProjectSlot(&cand.slots, slot));
    }
    cand.specs.push_back(std::move(cs));
  }

  // A pure COUNT(*) query decodes no columns; the row path is already
  // optimal there.
  if (cand.slots.empty()) return cand;
  cand.eligible = true;
  return cand;
}

// ---------------------------------------------------------------------------
// General columnar pipeline (compiled bytecode over span batches)
// ---------------------------------------------------------------------------

/// Plan fragment for the general columnar pipeline, assembled by
/// TryVectorAggregate / TryVectorProjection. `slots` lists the driver
/// schema slots the scan decodes; `slot_to_col` is its inverse
/// (schema slot -> span column, -1 for unprojected slots), shared by
/// every program in the fragment.
struct VectorPipeline {
  bool eligible = false;
  std::vector<size_t> slots;
  std::vector<ColumnFilter> scan_filters;  // cols index into `slots`
  CompiledExprPtr where_prog;  // non-pushable conjuncts, ANDed; or null
  std::vector<std::string> where_texts;
  std::vector<int> slot_to_col;
  // Aggregate form.
  std::vector<CompiledExprPtr> key_progs;
  std::vector<VectorAggSpec> spec_args;
  // Projection form.
  std::vector<CompiledExprPtr> proj_progs;
};

/// Splits the WHERE clause for the pipeline: simple comparisons become
/// scan-pushed span filters, everything else is re-ANDed, bound and
/// compiled into one VectorFilter program. Returns false when a
/// residual conjunct does not compile (pipeline ineligible).
bool SplitWhereForPipeline(const SelectStatement& select,
                           const FromInputs& inputs,
                           const udf::UdfRegistry* registry,
                           BytecodeCache* cache, VectorPipeline* p) {
  if (select.where == nullptr) return true;
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(select.where.get(), &conjuncts);
  std::vector<const Expr*> residual;
  for (const Expr* conj : conjuncts) {
    ColumnFilter f;
    if (TrySimpleSpanFilter(*conj, inputs.scope, &p->slots, &f)) {
      p->scan_filters.push_back(std::move(f));
    } else {
      residual.push_back(conj);
    }
  }
  if (residual.empty()) return true;
  ExprPtr combined = residual[0]->Clone();
  p->where_texts.push_back(residual[0]->ToString());
  for (size_t i = 1; i < residual.size(); ++i) {
    combined = MakeBinary(BinaryOp::kAnd, std::move(combined),
                          residual[i]->Clone());
    p->where_texts.push_back(residual[i]->ToString());
  }
  StatusOr<BoundExprPtr> bound =
      BindRowExpr(*combined, inputs.scope, registry);
  if (!bound.ok()) return false;
  p->where_prog = CompileExpr(*bound.value(), cache);
  return p->where_prog != nullptr;
}

/// Seals the fragment: collects every program's referenced slots into
/// the scan projection and builds the slot -> span-column map. A
/// fragment that touches no columns at all (pure COUNT(*), constant
/// projections) stays on the row path, which decodes nothing either.
bool FinishPipeline(const FromInputs& inputs, VectorPipeline* p) {
  auto collect = [&](const CompiledExprPtr& prog) {
    if (prog == nullptr) return;
    for (const size_t slot : prog->referenced_slots()) {
      ProjectSlot(&p->slots, slot);
    }
  };
  collect(p->where_prog);
  for (const auto& prog : p->key_progs) collect(prog);
  for (const auto& spec : p->spec_args) {
    for (const auto& arg : spec.args) collect(arg.prog);
  }
  for (const auto& prog : p->proj_progs) collect(prog);
  if (p->slots.empty()) return false;
  p->slot_to_col.assign(inputs.scope.total_slots(), -1);
  for (size_t i = 0; i < p->slots.size(); ++i) {
    p->slot_to_col[p->slots[i]] = static_cast<int>(i);
  }
  p->eligible = true;
  return true;
}

/// Second-chance plan for aggregates the fused fast path rejected:
/// GROUP BY keys and aggregate arguments compile to bytecode and run
/// over span batches (aggregate UDFs keep leading literal arguments as
/// constants, like the fast path). HAVING and the SELECT projections
/// operate per group on (keys, aggs) rows and stay interpreted.
VectorPipeline TryVectorAggregate(const SelectStatement& select,
                                  const FromInputs& inputs,
                                  const BoundAggregation& agg,
                                  const udf::UdfRegistry* registry,
                                  BytecodeCache* cache) {
  VectorPipeline p;
  if (inputs.driver == nullptr || !inputs.small_tables.empty()) return p;
  if (!SplitWhereForPipeline(select, inputs, registry, cache, &p)) {
    return VectorPipeline{};
  }
  for (const BoundExprPtr& key : agg.key_exprs) {
    CompiledExprPtr prog = CompileExpr(*key, cache);
    if (prog == nullptr) return VectorPipeline{};
    p.key_progs.push_back(std::move(prog));
  }
  for (const AggregateSpec& spec : agg.specs) {
    VectorAggSpec vs;
    if (spec.kind == AggregateSpec::Kind::kUdf) {
      size_t a = 0;
      storage::Datum lit;
      while (a < spec.args.size() && spec.args[a]->AsLiteralValue(&lit)) {
        VectorAggArg arg;
        arg.constant = std::move(lit);
        vs.args.push_back(std::move(arg));
        ++a;
      }
      for (; a < spec.args.size(); ++a) {
        VectorAggArg arg;
        arg.prog = CompileExpr(*spec.args[a], cache);
        if (arg.prog == nullptr) return VectorPipeline{};
        vs.args.push_back(std::move(arg));
      }
    } else if (spec.kind != AggregateSpec::Kind::kCountStar) {
      VectorAggArg arg;
      arg.prog = spec.args.size() == 1 ? CompileExpr(*spec.args[0], cache)
                                       : nullptr;
      if (arg.prog == nullptr) return VectorPipeline{};
      vs.args.push_back(std::move(arg));
    }
    p.spec_args.push_back(std::move(vs));
  }
  if (!FinishPipeline(inputs, &p)) return VectorPipeline{};
  return p;
}

/// Pipeline form for plain projections: every SELECT item's bound
/// expression must compile.
VectorPipeline TryVectorProjection(const SelectStatement& select,
                                   const FromInputs& inputs,
                                   const std::vector<BoundExprPtr>& bound,
                                   const udf::UdfRegistry* registry,
                                   BytecodeCache* cache) {
  VectorPipeline p;
  if (inputs.driver == nullptr || !inputs.small_tables.empty()) return p;
  if (!SplitWhereForPipeline(select, inputs, registry, cache, &p)) {
    return VectorPipeline{};
  }
  for (const BoundExprPtr& expr : bound) {
    CompiledExprPtr prog = CompileExpr(*expr, cache);
    if (prog == nullptr) return VectorPipeline{};
    p.proj_progs.push_back(std::move(prog));
  }
  if (!FinishPipeline(inputs, &p)) return VectorPipeline{};
  return p;
}

}  // namespace

Planner::Planner(storage::Catalog* catalog, const udf::UdfRegistry* registry,
                 ThreadPool* pool, size_t batch_capacity,
                 bool enable_column_cache, uint64_t morsel_rows,
                 const QueryContext* ctx, bool enable_expr_compile,
                 BytecodeCache* bytecode_cache, ViewRegistry* views)
    : catalog_(catalog),
      registry_(registry),
      pool_(pool),
      batch_capacity_(batch_capacity),
      enable_column_cache_(enable_column_cache),
      morsel_rows_(morsel_rows),
      ctx_(ctx),
      enable_expr_compile_(enable_expr_compile),
      bytecode_cache_(bytecode_cache),
      views_(views) {}

StatusOr<PhysicalPlan> Planner::Plan(const SelectStatement& select) const {
  NLQ_ASSIGN_OR_RETURN(FromInputs inputs, PrepareFrom(select, *catalog_));
  NLQ_RETURN_IF_ERROR(ApplyWherePushdown(select, registry_, &inputs));
  const bool is_aggregate = IsAggregateSelect(select, registry_);
  const bool vectorize = enable_expr_compile_;

  // Leaf: parallel partition scan, or the constant input of a
  // FROM-less query (one empty row; none under aggregation, where an
  // empty input still finalizes one global group).
  PlanNodePtr node;
  if (inputs.driver != nullptr) {
    node = std::make_unique<ParallelScanNode>(
        inputs.driver, select.from[0].table_name, batch_capacity_,
        morsel_rows_, ctx_);
  } else {
    node = std::make_unique<ConstantInputNode>(is_aggregate ? 0 : 1);
  }

  // Cross joins against the materialized (pushdown-filtered) small
  // tables, in FROM order.
  for (size_t s = 0; s < inputs.small_tables.size(); ++s) {
    const std::string display =
        select.from[s + 1].table_name + " AS " + inputs.small_aliases[s];
    node = std::make_unique<CrossJoinNode>(
        std::move(node), std::move(inputs.small_tables[s]),
        inputs.small_schemas[s]->num_columns(), display,
        std::move(inputs.pushed_texts[s]));
  }

  // Residual WHERE. The predicate gets a compiled program when its
  // tree supports it; the interpreted tree stays as the fallback (and
  // as EXPLAIN's source text).
  if (inputs.residual_where != nullptr) {
    CompiledExprPtr pred;
    if (vectorize) {
      pred = CompileExpr(*inputs.residual_where, bytecode_cache_);
    }
    node = std::make_unique<FilterNode>(
        std::move(node), std::move(inputs.residual_where),
        std::move(inputs.residual_texts), std::move(pred), ctx_);
  }

  std::vector<storage::Column> out_cols;
  if (is_aggregate) {
    std::vector<const Expr*> select_exprs;
    for (const auto& item : select.items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument("'*' requires COUNT(*) in aggregates");
      }
      select_exprs.push_back(item.expr.get());
    }
    // HAVING is bound like one more (hidden) select item so it can mix
    // aggregates and group keys; its value filters groups.
    const bool has_having = select.having != nullptr;
    if (has_having) select_exprs.push_back(select.having.get());
    std::vector<const Expr*> group_by;
    for (const auto& g : select.group_by) group_by.push_back(g.get());

    NLQ_ASSIGN_OR_RETURN(
        BoundAggregation agg,
        BindAggregation(select_exprs, group_by, inputs.scope, registry_));
    for (size_t i = 0; i < select.items.size(); ++i) {
      out_cols.push_back({ResultColumnName(select.items[i], i),
                          agg.projections[i]->result_type()});
    }
    ColumnarCandidate cand =
        vectorize ? TryColumnarFastPath(select, inputs, agg, has_having)
                  : ColumnarCandidate();
    VectorPipeline vp;
    if (!cand.eligible && vectorize) {
      vp = TryVectorAggregate(select, inputs, agg, registry_,
                              bytecode_cache_);
    }
    if (cand.eligible) {
      // Maintained-view decision: a global aggregate on the fused fast
      // path whose states are relocatable can be served from (and
      // incrementally maintain) registered per-morsel partials. A
      // spilled or unmaintainable statement, and the one statement that
      // observes a just-invalidated entry, runs the normal columnar
      // pipeline with an explanatory EXPLAIN note instead.
      std::string view_note;
      bool planned_view = false;
      if (views_ != nullptr) {
        if (inputs.driver->is_spilled()) {
          view_note = "view=ineligible (spilled)";
        } else if (!MaintainableSpecs(cand.specs)) {
          view_note = "view=ineligible (non-relocatable aggregate state)";
        } else {
          ViewDescriptor d;
          d.table = inputs.driver;
          d.table_name = select.from[0].table_name;
          d.slots = cand.slots;
          d.filters = cand.filters;
          d.specs = &cand.specs;
          d.morsel_rows = morsel_rows_;
          d.batch_capacity = batch_capacity_;
          const ViewProbe probe = views_->Probe(d);
          if (probe.invalidated) {
            // The entry was dropped; this statement rescans normally
            // and the next eligible one reseeds the view.
            view_note = "view=stale";
          } else {
            std::string state =
                probe.registered
                    ? StringPrintf(
                          "view=fresh delta=%llu of %llu row(s)",
                          static_cast<unsigned long long>(probe.delta_rows),
                          static_cast<unsigned long long>(probe.total_rows))
                    : StringPrintf(
                          "view=stale (seeding %llu row(s))",
                          static_cast<unsigned long long>(probe.total_rows));
            node = std::make_unique<MaintainedViewNode>(
                views_, std::move(d), std::move(cand.specs),
                std::move(agg.projections), select.items.size(),
                std::move(state), pool_, ctx_);
            planned_view = true;
          }
        }
      }
      if (!planned_view) {
        // Replace the row-oriented scan/filter chain with the columnar
        // one; the pushed-down comparisons run on column spans inside
        // the scan.
        auto scan = std::make_unique<ColumnarScanNode>(
            inputs.driver, select.from[0].table_name, std::move(cand.slots),
            std::move(cand.filters), enable_column_cache_, batch_capacity_,
            morsel_rows_, ctx_);
        auto cagg = std::make_unique<ColumnarAggregateNode>(
            std::move(scan), std::move(cand.specs), std::move(agg.projections),
            select.items.size(), pool_, ctx_);
        if (!view_note.empty()) cagg->set_view_note(std::move(view_note));
        node = std::move(cagg);
      }
    } else if (vp.eligible) {
      // General columnar pipeline: GROUP BY keys and aggregate
      // arguments run compiled over span batches; non-pushable WHERE
      // conjuncts run as one compiled VectorFilter program.
      auto scan = std::make_unique<ColumnarScanNode>(
          inputs.driver, select.from[0].table_name, std::move(vp.slots),
          std::move(vp.scan_filters), enable_column_cache_, batch_capacity_,
          morsel_rows_, ctx_);
      const ColumnarScanNode* scan_ptr = scan.get();
      PlanNodePtr chain = std::move(scan);
      if (vp.where_prog != nullptr) {
        chain = std::make_unique<VectorFilterNode>(
            std::move(chain), std::move(vp.where_prog), vp.slot_to_col,
            std::move(vp.where_texts), ctx_);
      }
      bool grouped_udf = false;
      if (views_ != nullptr && !agg.key_exprs.empty()) {
        for (const AggregateSpec& spec : agg.specs) {
          if (spec.kind == AggregateSpec::Kind::kUdf) grouped_udf = true;
        }
      }
      auto vagg = std::make_unique<VectorHashAggregateNode>(
          std::move(chain), scan_ptr, std::move(agg),
          std::move(vp.key_progs), std::move(vp.spec_args),
          std::move(vp.slot_to_col), has_having,
          has_having ? select.having->ToString() : std::string(),
          select.items.size(), pool_, ctx_);
      // Grouped n,L,Q aggregates stay unmaintained: hash-table output
      // ordering is not replayable bit-identically (DESIGN.md §13).
      if (grouped_udf) vagg->set_view_note("view=ineligible (group-by)");
      node = std::move(vagg);
    } else {
      node = std::make_unique<HashAggregateNode>(
          std::move(node), std::move(agg), has_having,
          has_having ? select.having->ToString() : std::string(),
          select.items.size(), pool_, batch_capacity_, ctx_);
    }
  } else {
    // Expand the select list (handling bare `*`).
    std::vector<BoundExprPtr> projections;
    bool has_star = false;
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.expr == nullptr) {  // bare *
        has_star = true;
        for (const auto& col : inputs.scope.AllColumns()) {
          out_cols.push_back(col);
        }
        continue;
      }
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                           BindRowExpr(*item.expr, inputs.scope, registry_));
      out_cols.push_back({ResultColumnName(item, i), bound->result_type()});
      projections.push_back(std::move(bound));
    }
    VectorPipeline vp;
    if (vectorize && !has_star) {
      vp = TryVectorProjection(select, inputs, projections, registry_,
                               bytecode_cache_);
    }
    if (vp.eligible) {
      // General columnar pipeline: projections (and non-pushable WHERE
      // conjuncts) run compiled over span batches. The scan skips the
      // decoded-column cache — Gather drains the streams in parallel
      // and there is no safe single-threaded warm point here.
      node = std::make_unique<ColumnarScanNode>(
          inputs.driver, select.from[0].table_name, std::move(vp.slots),
          std::move(vp.scan_filters), /*use_cache=*/false, batch_capacity_,
          morsel_rows_, ctx_);
      if (vp.where_prog != nullptr) {
        node = std::make_unique<VectorFilterNode>(
            std::move(node), std::move(vp.where_prog), vp.slot_to_col,
            std::move(vp.where_texts), ctx_);
      }
      node = std::make_unique<VectorProjectNode>(std::move(node),
                                                 std::move(vp.proj_progs),
                                                 std::move(vp.slot_to_col),
                                                 ctx_);
    } else if (has_star) {
      // SELECT * forwards the joined row (star mixed with expressions
      // is not supported: star copies the joined row).
      node = std::make_unique<ProjectNode>(std::move(node));
    } else {
      // Row path: each projection still gets a compiled program where
      // its tree supports one; nullptr entries run interpreted.
      std::vector<CompiledExprPtr> compiled;
      if (vectorize) {
        compiled.reserve(projections.size());
        for (const BoundExprPtr& expr : projections) {
          compiled.push_back(CompileExpr(*expr, bytecode_cache_));
        }
      }
      node = std::make_unique<ProjectNode>(std::move(node),
                                           std::move(projections),
                                           std::move(compiled), ctx_);
    }
    if (node->num_streams() > 1) {
      node = std::make_unique<GatherNode>(std::move(node), pool_,
                                          batch_capacity_, ctx_);
    }
  }

  Schema output_schema{std::move(out_cols)};

  // ORDER BY binds against the result schema (so aliases and
  // positions resolve), exactly like the previous post-materialization
  // sort.
  if (!select.order_by.empty()) {
    BindingScope result_scope;
    result_scope.AddTable("", &output_schema);
    std::vector<BoundExprPtr> key_exprs;
    std::vector<bool> descending;
    for (const auto& item : select.order_by) {
      descending.push_back(item.descending);
      // Positional form: ORDER BY 2.
      if (item.expr->kind == ExprKind::kLiteral &&
          item.expr->literal.type() == DataType::kInt64 &&
          !item.expr->literal.is_null()) {
        const int64_t pos = item.expr->literal.int_value();
        if (pos < 1 || pos > static_cast<int64_t>(output_schema.num_columns())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        const auto& col = output_schema.column(static_cast<size_t>(pos - 1));
        key_exprs.push_back(
            MakeBoundInputRef(static_cast<size_t>(pos - 1), col.type));
        continue;
      }
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                           BindRowExpr(*item.expr, result_scope, registry_));
      key_exprs.push_back(std::move(bound));
    }
    node = std::make_unique<SortNode>(std::move(node), std::move(key_exprs),
                                      std::move(descending), select.limit,
                                      ctx_);
  }

  if (select.limit >= 0) {
    node = std::make_unique<LimitNode>(std::move(node), select.limit);
  }

  PhysicalPlan plan;
  plan.root = std::move(node);
  plan.output_schema = std::move(output_schema);
  return plan;
}

}  // namespace nlq::engine::exec
