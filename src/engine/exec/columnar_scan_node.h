#ifndef NLQ_ENGINE_EXEC_COLUMNAR_SCAN_NODE_H_
#define NLQ_ENGINE_EXEC_COLUMNAR_SCAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "engine/ast.h"
#include "engine/exec/morsel.h"
#include "engine/exec/plan.h"
#include "storage/column_batch.h"
#include "storage/partitioned_table.h"

namespace nlq::engine::exec {

/// One pushed-down simple comparison (`column <op> literal`) evaluated
/// directly on column spans. The literal is widened to double exactly
/// like Datum::AsDouble, which is also how the row-path interpreter
/// compares numeric operands — both paths keep or drop the same rows.
/// A NULL column value makes the comparison UNKNOWN and drops the row,
/// matching FilterNode.
struct ColumnFilter {
  size_t col = 0;               // index into the scan's projected columns
  BinaryOp op = BinaryOp::kEq;  // comparison op only (kEq..kGe)
  double value = 0.0;           // the literal operand
  std::string text;             // display form for EXPLAIN
};

/// ANDs one pushed-down comparison into `keep`. Values are widened to
/// double exactly like Datum::AsDouble, so the verdict matches the
/// row-path interpreter bit for bit; NULL operands fail every
/// comparison (UNKNOWN drops the row, as in FilterNode). Shared with
/// the maintained-view refresh path, which must keep and drop exactly
/// the rows the scan would.
void ApplyColumnFilter(const ColumnFilter& f, const ColumnSpanBatch& in,
                       uint8_t* keep);

/// Leaf of the columnar pipeline: scans a partitioned table's pages
/// straight into typed column arrays (no Datum boxing) and applies
/// pushed-down simple comparisons by span compaction. Driven through
/// OpenColumnStream by the columnar consumers (ColumnarAggregate,
/// VectorFilter, VectorProject, VectorHashAggregate); the row-oriented
/// OpenStream is deliberately unimplemented.
///
/// Streams are morsels from the same grid ParallelScanNode uses (same
/// `morsel_rows`), so the row and columnar paths have identical stream
/// structure and their stream-order merges stay mutually
/// byte-identical (see tests/columnar_equivalence_test.cc).
///
/// With `use_cache` the scan decodes each partition's columns once
/// into the table's decoded-column cache and serves morsel-sized span
/// slices of it on every subsequent scan (iterative model building
/// re-scans the same table many times); the cache is invalidated by
/// appends. Without it each stream decodes its row range through a
/// ColumnBatchScanner.
class ColumnarScanNode : public PlanNode {
 public:
  ColumnarScanNode(const storage::PartitionedTable* table,
                   std::string table_name, std::vector<size_t> slots,
                   std::vector<ColumnFilter> filters, bool use_cache,
                   size_t batch_capacity,
                   uint64_t morsel_rows = kDefaultMorselRows,
                   const QueryContext* ctx = nullptr);

  const char* name() const override { return "ColumnarScan"; }
  std::string annotation() const override;
  size_t output_width() const override { return slots_.size(); }
  size_t num_streams() const override { return grid_.size(); }

  /// The columnar scan feeds its consumers spans, not rows.
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  StatusOr<ColumnStreamPtr> OpenColumnStreamImpl(size_t s) const override;

  /// Fills each partition's decoded-column cache, one partition per
  /// pool task (Table::EnsureDecodedColumns is not safe against
  /// concurrent fills of the SAME partition, which morsel streams
  /// would otherwise do). No-op when the cache is disabled. Callers
  /// draining column streams on a pool must call this first.
  ///
  /// When the query carries a memory budget, the bytes the fill would
  /// add (not-yet-cached columns only) are estimated first; if they
  /// do not fit, the cache is skipped for this statement and every
  /// stream falls back to streaming page decode — the query still
  /// succeeds, trading the re-scan speedup for bounded memory.
  Status WarmCache(ThreadPool* pool) const;

  /// Schema slot indices of the projected columns, in span order.
  const std::vector<size_t>& slots() const { return slots_; }
  const storage::Schema& schema() const { return table_->schema(); }

 private:
  const storage::PartitionedTable* table_;
  std::string table_name_;
  std::vector<size_t> slots_;
  std::vector<ColumnFilter> filters_;
  bool use_cache_;
  size_t batch_capacity_;
  uint64_t morsel_rows_;
  const QueryContext* ctx_;
  /// Any partition spilled at plan time: the decoded-column cache is
  /// never used (re-materializing a spilled table in RAM would undo
  /// the spill); streams decode chunks through the buffer pool.
  bool spilled_ = false;
  /// Set by WarmCache when the fill would bust the query's memory
  /// budget; streams opened afterwards decode in streaming mode.
  mutable bool cache_suppressed_ = false;
  std::vector<Morsel> grid_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_COLUMNAR_SCAN_NODE_H_
