#include "engine/exec/agg_partials.h"

#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::NullBitGet;
using storage::Row;

/// ROW phase of one SQL builtin over one span: NULLs are skipped per
/// column and `seen` is raised per surviving row, matching the row
/// path's per-Datum loop update for update.
void AccumulateBuiltinSpan(AggregateSpec::Kind kind,
                           const ColumnSpanBatch& in, size_t c,
                           BuiltinAggState* b) {
  const double* dv = in.doubles[c];
  const int64_t* iv = in.ints[c];
  const uint64_t* nb = in.null_bits[c];
  for (size_t r = 0; r < in.rows; ++r) {
    if (nb != nullptr && NullBitGet(nb, r)) continue;
    const double x = dv != nullptr ? dv[r] : static_cast<double>(iv[r]);
    switch (kind) {
      case AggregateSpec::Kind::kSum:
      case AggregateSpec::Kind::kAvg:
        b->sum += x;
        ++b->count;
        break;
      case AggregateSpec::Kind::kCount:
        ++b->count;
        break;
      case AggregateSpec::Kind::kMin:
        if (!b->seen || x < b->min) b->min = x;
        break;
      case AggregateSpec::Kind::kMax:
        if (!b->seen || x > b->max) b->max = x;
        break;
      default:
        break;
    }
    b->seen = true;
  }
}

/// ROW phase of one aggregate UDF over one batch: widens BIGINT
/// arguments to double and applies the skip-row NULL policy (a NULL in
/// any argument drops the row from this UDF only) by order-preserving
/// compaction, then hands dense spans to AccumulateSpans. Called even
/// when every row compacts away — the UDF state must still fix its
/// shape, exactly as Accumulate does before its own NULL check.
Status AccumulateUdfSpans(const ColumnarAggSpec& spec,
                          const ColumnSpanBatch& in, void* state,
                          SpanScratch* scratch) {
  const size_t ncols = spec.arg_cols.size();
  if (scratch->cols.size() < ncols) scratch->cols.resize(ncols);
  scratch->spans.resize(ncols);
  bool any_nulls = false;
  for (size_t a = 0; a < ncols; ++a) {
    any_nulls |= in.null_bits[spec.arg_cols[a]] != nullptr;
  }
  size_t out_rows = in.rows;
  if (any_nulls) {
    scratch->keep.assign(in.rows, 1);
    out_rows = 0;
    for (size_t a = 0; a < ncols; ++a) {
      const uint64_t* nb = in.null_bits[spec.arg_cols[a]];
      if (nb == nullptr) continue;
      for (size_t r = 0; r < in.rows; ++r) {
        if (NullBitGet(nb, r)) scratch->keep[r] = 0;
      }
    }
    for (size_t r = 0; r < in.rows; ++r) out_rows += scratch->keep[r];
  }
  NLQ_FAILPOINT("udf_accumulate");
  for (size_t a = 0; a < ncols; ++a) {
    const size_t c = spec.arg_cols[a];
    const double* dv = in.doubles[c];
    const int64_t* iv = in.ints[c];
    if (!any_nulls && dv != nullptr) {
      scratch->spans[a] = dv;  // zero-copy fast path
      continue;
    }
    std::vector<double>& buf = scratch->cols[a];
    buf.resize(out_rows);
    size_t w = 0;
    for (size_t r = 0; r < in.rows; ++r) {
      if (any_nulls && !scratch->keep[r]) continue;
      buf[w++] = dv != nullptr ? dv[r] : static_cast<double>(iv[r]);
    }
    scratch->spans[a] = buf.data();
  }
  return spec.udaf->AccumulateSpans(state, spec.const_args,
                                    scratch->spans.data(), ncols, out_rows);
}

}  // namespace

Status InitPartial(const std::vector<ColumnarAggSpec>& specs,
                   MemoryTracker* memory, PartialState* state) {
  state->builtin.resize(specs.size());
  state->heaps.resize(specs.size());
  state->udf_states.resize(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    NLQ_ASSIGN_OR_RETURN(state->heaps[i], udf::HeapSegment::Create(memory));
    NLQ_ASSIGN_OR_RETURN(void* udf_state,
                         specs[i].udaf->Init(state->heaps[i].get()));
    state->udf_states[i] = udf_state;
  }
  return Status::OK();
}

Status AccumulateSpecsBatch(const std::vector<ColumnarAggSpec>& specs,
                            const ColumnSpanBatch& batch, PartialState* state,
                            SpanScratch* scratch) {
  for (size_t i = 0; i < specs.size(); ++i) {
    const ColumnarAggSpec& spec = specs[i];
    if (spec.kind == AggregateSpec::Kind::kCountStar) {
      state->builtin[i].count += static_cast<int64_t>(batch.rows);
    } else if (spec.kind == AggregateSpec::Kind::kUdf) {
      NLQ_RETURN_IF_ERROR(
          AccumulateUdfSpans(spec, batch, state->udf_states[i], scratch));
    } else {
      AccumulateBuiltinSpan(spec.kind, batch, spec.arg_cols[0],
                            &state->builtin[i]);
    }
  }
  return Status::OK();
}

Status MergePartial(const std::vector<ColumnarAggSpec>& specs,
                    PartialState* dst, const PartialState* src) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == AggregateSpec::Kind::kUdf) {
      NLQ_FAILPOINT("udf_merge");
      NLQ_RETURN_IF_ERROR(
          specs[i].udaf->Merge(dst->udf_states[i], src->udf_states[i]));
      continue;
    }
    BuiltinAggState& d = dst->builtin[i];
    const BuiltinAggState& s = src->builtin[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.seen) {
      if (!d.seen || s.min < d.min) d.min = s.min;
      if (!d.seen || s.max > d.max) d.max = s.max;
      d.seen = true;
    }
  }
  return Status::OK();
}

Status ClonePartialInto(const std::vector<ColumnarAggSpec>& specs,
                        MemoryTracker* memory, const PartialState& src,
                        PartialState* dst) {
  NLQ_RETURN_IF_ERROR(InitPartial(specs, memory, dst));
  dst->builtin = src.builtin;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    const size_t bytes = specs[i].udaf->RelocatableStateSize();
    if (bytes == 0) {
      return Status::Internal(specs[i].udaf->name() +
                              " state is not relocatable; cannot clone");
    }
    std::memcpy(dst->udf_states[i], src.udf_states[i], bytes);
  }
  return Status::OK();
}

bool MaintainableSpecs(const std::vector<ColumnarAggSpec>& specs) {
  for (const ColumnarAggSpec& spec : specs) {
    if (spec.kind != AggregateSpec::Kind::kUdf) continue;
    if (spec.udaf->RelocatableStateSize() == 0) return false;
  }
  return true;
}

StatusOr<Row> FinalizePartial(const std::vector<ColumnarAggSpec>& specs,
                              const PartialState& state) {
  Row out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const ColumnarAggSpec& spec = specs[i];
    const BuiltinAggState& b = state.builtin[i];
    switch (spec.kind) {
      case AggregateSpec::Kind::kCountStar:
      case AggregateSpec::Kind::kCount:
        out[i] = Datum::Int64(b.count);
        break;
      case AggregateSpec::Kind::kSum:
        out[i] = b.seen ? Datum::Double(b.sum) : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kAvg:
        out[i] = b.count > 0
                     ? Datum::Double(b.sum / static_cast<double>(b.count))
                     : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        if (!b.seen) {
          out[i] = Datum::Null(spec.result_type);
          break;
        }
        const double v =
            spec.kind == AggregateSpec::Kind::kMin ? b.min : b.max;
        out[i] = spec.result_type == DataType::kInt64
                     ? Datum::Int64(static_cast<int64_t>(v))
                     : Datum::Double(v);
        break;
      }
      case AggregateSpec::Kind::kUdf: {
        NLQ_ASSIGN_OR_RETURN(Datum v, spec.udaf->Finalize(state.udf_states[i]));
        out[i] = std::move(v);
        break;
      }
    }
  }
  return out;
}

}  // namespace nlq::engine::exec
