#ifndef NLQ_ENGINE_EXEC_MORSEL_H_
#define NLQ_ENGINE_EXEC_MORSEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/partitioned_table.h"

namespace nlq::engine::exec {

/// Default morsel size in rows. Large enough that per-morsel overhead
/// (claim, partial-state merge) is noise; small enough that a skewed
/// partition splits into many units any worker can claim.
inline constexpr uint64_t kDefaultMorselRows = 16384;

/// One unit of parallel scan work: rows [begin, end) of a partition.
struct Morsel {
  size_t partition = 0;
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t rows() const { return end - begin; }
};

/// Splits every partition of `table` into morsels of up to
/// `morsel_rows` rows. The grid depends only on the partition layout
/// and `morsel_rows` — never on thread count or scheduling — so a plan
/// over the same data produces the same streams whatever the pool
/// looks like; that is what makes morsel-order merges deterministic.
///
/// `morsel_rows == 0` means one morsel per non-empty partition
/// (partition-granular parallelism, the pre-morsel behavior).
/// An empty table yields a single empty morsel so plans always have at
/// least one stream (a global aggregate over no input still finalizes
/// one group).
std::vector<Morsel> BuildMorselGrid(const storage::PartitionedTable& table,
                                    uint64_t morsel_rows);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_MORSEL_H_
