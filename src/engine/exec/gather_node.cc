#include "engine/exec/gather_node.h"

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Row;

/// Lazily materializes the child's streams on first pull, then
/// replays the concatenation.
class GatherStream : public ExecStream {
 public:
  GatherStream(const PlanNode* child, ThreadPool* pool, size_t batch_capacity,
               const QueryContext* ctx)
      : child_(child), pool_(pool), batch_capacity_(batch_capacity),
        ctx_(ctx) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(
          std::vector<Row> rows,
          DrainAllStreams(*child_, pool_, batch_capacity_, ctx_));
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const PlanNode* child_;
  ThreadPool* pool_;
  size_t batch_capacity_;
  const QueryContext* ctx_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

size_t ApproxRowBytes(const storage::Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(storage::Datum);
  for (const storage::Datum& d : row) {
    if (!d.is_null() && d.type() == storage::DataType::kVarchar) {
      bytes += d.string_value().size();
    }
  }
  return bytes;
}

StatusOr<std::vector<Row>> DrainAllStreams(const PlanNode& node,
                                           ThreadPool* pool,
                                           size_t batch_capacity,
                                           const QueryContext* ctx) {
  const size_t streams = node.num_streams();
  std::vector<std::vector<Row>> buckets(streams);
  MemoryTracker* memory = ctx != nullptr ? ctx->memory() : nullptr;

  auto drain_one = [&](size_t s) -> Status {
    NLQ_ASSIGN_OR_RETURN(ExecStreamPtr stream, node.OpenStream(s));
    RowBatch batch(batch_capacity);
    for (;;) {
      if (ctx != nullptr) NLQ_RETURN_IF_ERROR(ctx->CheckAlive());
      NLQ_ASSIGN_OR_RETURN(const bool more, stream->Next(&batch));
      if (!more) return Status::OK();
      if (memory != nullptr) {
        size_t bytes = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          bytes += ApproxRowBytes(batch.row(i));
        }
        NLQ_RETURN_IF_ERROR(memory->Charge(bytes, "materialized rows"));
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        buckets[s].push_back(std::move(batch.row(i)));
      }
    }
  };

  if (streams == 1 || pool == nullptr) {
    for (size_t s = 0; s < streams; ++s) NLQ_RETURN_IF_ERROR(drain_one(s));
  } else {
    NLQ_RETURN_IF_ERROR(pool->ParallelFor(streams, drain_one, ctx));
  }

  size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (auto& b : buckets) {
    for (auto& r : b) rows.push_back(std::move(r));
  }
  return rows;
}

GatherNode::GatherNode(PlanNodePtr child, ThreadPool* pool,
                       size_t batch_capacity, const QueryContext* ctx)
    : PlanNode(std::move(child)), pool_(pool),
      batch_capacity_(batch_capacity), ctx_(ctx) {}

std::string GatherNode::annotation() const {
  return StringPrintf("%zu stream(s), %zu worker(s)", child_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
}

StatusOr<ExecStreamPtr> GatherNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(
      new GatherStream(child_.get(), pool_, batch_capacity_, ctx_));
}

}  // namespace nlq::engine::exec
