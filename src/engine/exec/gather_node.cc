#include "engine/exec/gather_node.h"

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Row;

/// Lazily materializes the child's streams on first pull, then
/// replays the concatenation.
class GatherStream : public ExecStream {
 public:
  GatherStream(const PlanNode* child, ThreadPool* pool,
               size_t batch_capacity)
      : child_(child), pool_(pool), batch_capacity_(batch_capacity) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           DrainAllStreams(*child_, pool_, batch_capacity_));
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const PlanNode* child_;
  ThreadPool* pool_;
  size_t batch_capacity_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

StatusOr<std::vector<Row>> DrainAllStreams(const PlanNode& node,
                                           ThreadPool* pool,
                                           size_t batch_capacity) {
  const size_t streams = node.num_streams();
  std::vector<std::vector<Row>> buckets(streams);
  std::vector<Status> statuses(streams);

  auto drain_one = [&](size_t s) {
    StatusOr<ExecStreamPtr> stream = node.OpenStream(s);
    if (!stream.ok()) {
      statuses[s] = stream.status();
      return;
    }
    RowBatch batch(batch_capacity);
    for (;;) {
      StatusOr<bool> more = (*stream)->Next(&batch);
      if (!more.ok()) {
        statuses[s] = more.status();
        return;
      }
      if (!more.value()) return;
      for (size_t i = 0; i < batch.size(); ++i) {
        buckets[s].push_back(std::move(batch.row(i)));
      }
    }
  };

  if (streams == 1 || pool == nullptr) {
    for (size_t s = 0; s < streams; ++s) drain_one(s);
  } else {
    pool->ParallelFor(streams, drain_one);
  }
  for (const Status& s : statuses) NLQ_RETURN_IF_ERROR(s);

  size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (auto& b : buckets) {
    for (auto& r : b) rows.push_back(std::move(r));
  }
  return rows;
}

GatherNode::GatherNode(PlanNodePtr child, ThreadPool* pool,
                       size_t batch_capacity)
    : PlanNode(std::move(child)), pool_(pool),
      batch_capacity_(batch_capacity) {}

std::string GatherNode::annotation() const {
  return StringPrintf("%zu stream(s), %zu worker(s)", child_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
}

StatusOr<ExecStreamPtr> GatherNode::OpenStream(size_t) const {
  return ExecStreamPtr(
      new GatherStream(child_.get(), pool_, batch_capacity_));
}

}  // namespace nlq::engine::exec
