#ifndef NLQ_ENGINE_EXEC_COLUMN_STREAM_H_
#define NLQ_ENGINE_EXEC_COLUMN_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace nlq::engine::exec {

/// A batch of typed column spans — the unit of the columnar pipeline
/// (ColumnarScan → VectorFilter → VectorProject/VectorHashAggregate).
/// Spans alias buffers owned by the producing stream (or the table's
/// decoded-column cache) and stay valid until its next Next() call.
struct ColumnSpanBatch {
  size_t rows = 0;
  /// Per projected column: a dense value span of length `rows`.
  /// Exactly one of doubles[i] / ints[i] is non-null, by column type.
  std::vector<const double*> doubles;
  std::vector<const int64_t*> ints;
  /// Null bitmap per column (bit r set = row r NULL; value slot holds
  /// 0/0.0 there), or nullptr when the span contains no NULLs.
  std::vector<const uint64_t*> null_bits;
};

/// Pull cursor over one stream of column spans — the columnar
/// counterpart of ExecStream. Batches are never empty: a filter that
/// eliminates every row of a batch advances to the next one, so
/// consumers can treat each batch as evidence that rows survived (the
/// row path's FilterNode gives its aggregate the same guarantee).
class ColumnStream {
 public:
  virtual ~ColumnStream() = default;

  /// Points `out` at the next batch of spans; returns true while rows
  /// were produced, false once the stream is exhausted.
  virtual StatusOr<bool> Next(ColumnSpanBatch* out) = 0;
};

using ColumnStreamPtr = std::unique_ptr<ColumnStream>;

/// Stream-owned storage backing one compacted column of a filtered
/// span batch.
struct ScratchColumn {
  std::vector<double> doubles;
  std::vector<int64_t> ints;
  std::vector<uint64_t> null_bits;
  bool has_nulls = false;
};

/// Compacts `batch` in place to the rows with keep[r] != 0,
/// order-preserving, repointing its spans at `scratch` (resized to the
/// batch's column count). When every row survives the batch is left
/// untouched. Returns the surviving row count; 0 means the caller must
/// skip the batch (its spans are unspecified).
size_t CompactColumnSpans(ColumnSpanBatch* batch, const uint8_t* keep,
                          std::vector<ScratchColumn>* scratch);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_COLUMN_STREAM_H_
