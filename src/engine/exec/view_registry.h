#ifndef NLQ_ENGINE_EXEC_VIEW_REGISTRY_H_
#define NLQ_ENGINE_EXEC_VIEW_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "engine/exec/agg_partials.h"
#include "engine/exec/columnar_scan_node.h"
#include "storage/partitioned_table.h"

namespace nlq::engine::exec {

/// Identity of one maintainable aggregate query shape: the (table,
/// column-set, WHERE-conjunct, aggregate-list) key a materialized
/// sufficient-statistic view is registered under. The spec vector is
/// referenced, not owned — it lives in the plan node driving the call.
struct ViewDescriptor {
  const storage::PartitionedTable* table = nullptr;
  std::string table_name;
  std::vector<size_t> slots;            // projected schema slots
  std::vector<ColumnFilter> filters;    // pushed-down conjuncts
  const std::vector<ColumnarAggSpec>* specs = nullptr;
  uint64_t morsel_rows = 0;
  size_t batch_capacity = 1024;
};

/// Plan-time freshness probe result.
struct ViewProbe {
  bool registered = false;  // a live, current entry exists
  bool invalidated = false; // an entry existed but was stale (now dropped)
  uint64_t delta_rows = 0;  // rows past the watermark a Serve would accumulate
  uint64_t total_rows = 0;  // current table row count
};

/// Registry of materialized sufficient-statistic views: per-morsel
/// aggregate partials (agg_partials.h PartialState) kept across
/// statements, keyed by query shape. A Serve() accumulates only the
/// rows appended past each partition's watermark — O(delta) — then
/// merges a *clone* of the stored partials in morsel-index order, so
/// the result is bit-identical to a full rescan by the engine's
/// merge-order contract (DESIGN.md section 13 gives the argument).
///
/// Staleness: each entry captures every partition's mutation epoch at
/// registration. Appends do not bump epochs (they only move num_rows
/// past the watermark); Clear/SpillToDisk/LoadFromFile do. An epoch
/// mismatch, a table-pointer change (DROP + CREATE), or a shrunken row
/// space invalidates the entry — Probe drops it and the planner falls
/// back to the normal columnar pipeline for that statement.
///
/// Thread-safety: all public methods take one internal mutex; like the
/// Database itself, one statement executes at a time, but invalidation
/// hooks (DROP TABLE) and probes may interleave with online refresh
/// loops that serialize externally.
class ViewRegistry {
 public:
  /// `max_views` bounds memoization: registering past the cap evicts
  /// the least-recently-served entry. `memory_limit_bytes` bounds the
  /// total bytes of stored partial state (0 = unlimited, tracked);
  /// exceeding it fails the accumulate, which degrades that statement
  /// to a plain rescan and drops the entry.
  explicit ViewRegistry(size_t max_views = 16,
                        uint64_t memory_limit_bytes = 0);

  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Plan-time freshness check. Side effect: a stale entry is dropped
  /// (its state can never be reused — any future statement would have
  /// to reseed anyway).
  ViewProbe Probe(const ViewDescriptor& d);

  /// Serves the descriptor's aggregate values: seeds the view (full
  /// accumulate, one partial per grid morsel) when no entry exists,
  /// delta-accumulates rows past each partition watermark otherwise,
  /// then clones + merges the stored partials in morsel-index order
  /// and finalizes. On an accumulate failure other than cancellation /
  /// deadline the entry is dropped and the statement degrades to a
  /// registry-free full rescan — never a wrong result.
  StatusOr<storage::Row> Serve(const ViewDescriptor& d, ThreadPool* pool,
                               const QueryContext* ctx);

  /// Drops every view registered against `table_name` (DROP TABLE and
  /// SpillTable hook: a recreated table must never alias a stale
  /// entry's epochs).
  void InvalidateTable(const std::string& table_name);

  /// Bytes of partial state currently held (all views).
  uint64_t state_bytes() const { return memory_.used(); }

  size_t num_views() const;

 private:
  struct Entry {
    const storage::PartitionedTable* table = nullptr;
    std::string table_name;
    std::vector<uint64_t> epochs;      // per partition, at registration
    std::vector<uint64_t> watermarks;  // rows accumulated per partition
    /// partials[p][m]: state of morsel m of partition p, in the same
    /// (partition, morsel-index) order BuildMorselGrid emits.
    std::vector<std::vector<std::unique_ptr<PartialState>>> partials;
    uint64_t last_served = 0;  // LRU tick for eviction
  };

  /// Canonical map key of a descriptor (table name + slots + filter
  /// conjuncts with literal bit patterns + aggregate specs).
  static std::string KeyOf(const ViewDescriptor& d);

  /// True when `e` may serve `d` against the current table state.
  static bool EntryCurrent(const Entry& e, const ViewDescriptor& d);

  /// Accumulates rows [wm, rows) of every partition into `e`'s
  /// partials, extending the tail morsel and appending new ones.
  /// `use_failpoint` is off on the degrade-to-rescan path so a still-
  /// armed view_maintenance failpoint cannot re-fire there.
  Status AccumulateDeltas(Entry* e, const ViewDescriptor& d, ThreadPool* pool,
                          const QueryContext* ctx, uint64_t* delta_rows);

  /// Registry-free full rescan: fresh per-morsel partials accumulated
  /// from scratch (no failpoint), merged and finalized — the fallback
  /// that keeps results correct when view maintenance fails.
  StatusOr<storage::Row> RescanWithoutView(const ViewDescriptor& d,
                                           ThreadPool* pool,
                                           const QueryContext* ctx);

  /// Clones `e`'s stored partials and folds them in morsel-index
  /// order, then finalizes.
  StatusOr<storage::Row> MergeAndFinalize(const Entry& e,
                                          const ViewDescriptor& d);

  void EvictIfNeeded();

  mutable std::mutex mu_;
  size_t max_views_;
  MemoryTracker memory_;
  uint64_t lru_tick_ = 0;
  std::map<std::string, std::unique_ptr<Entry>> views_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_VIEW_REGISTRY_H_
