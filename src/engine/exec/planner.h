#ifndef NLQ_ENGINE_EXEC_PLANNER_H_
#define NLQ_ENGINE_EXEC_PLANNER_H_

#include <memory>

#include "common/query_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "engine/ast.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/morsel.h"
#include "engine/exec/plan.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "udf/udf.h"

namespace nlq::engine::exec {

class ViewRegistry;

/// A planned SELECT: the physical operator tree plus the result
/// schema its root produces.
struct PhysicalPlan {
  PlanNodePtr root;
  storage::Schema output_schema;
};

/// Builds a physical plan from a parsed SELECT statement:
///
///   [Limit] <- [Sort] <- Gather|HashAggregate <- [Filter]
///       <- [CrossJoin...] <- ParallelScan|ConstantInput
///
/// Planning performs all binding (scope resolution, aggregate
/// extraction, WHERE-conjunct pushdown into the materialized small
/// tables, ORDER BY binding over the result schema) so that
/// execution is pure data flow. Planning a statement does not scan
/// the driver table; only the small cross-join sides are
/// materialized, exactly as the previous monolithic executor did.
///
/// Global aggregates over a single base table whose aggregate
/// arguments are bare column references — the paper's N,L,Q summary
/// queries — are planned as the columnar fast path instead:
///
///   [Limit] <- [Sort] <- ColumnarAggregate <- ColumnarScan
///
/// The WHERE clause (if any) must consist of simple
/// `column <op> literal` comparisons, which are pushed into the scan
/// and evaluated on column spans; anything else falls back to the row
/// path, which remains the correctness oracle for the columnar one.
///
/// Queries the fused fast path rejects get a second chance on the
/// general columnar pipeline (when expression compilation is enabled):
/// single-table SELECTs — grouped aggregates included — whose
/// expressions all compile to bytecode run as
///
///   VectorHashAggregate <- [VectorFilter] <- ColumnarScan      or
///   [Limit] <- [Sort] <- Gather <- VectorProject
///       <- [VectorFilter] <- ColumnarScan
///
/// with simple comparisons still pushed into the scan and the
/// remaining WHERE conjuncts ANDed into one compiled VectorFilter
/// program. Queries that stay on the row path (joins, ORDER-BY-only
/// shapes, scalar UDFs next to arithmetic) still get per-expression
/// compiled programs inside Filter/Project wherever their
/// subexpressions compile; only genuinely uncompilable constructs run
/// interpreted.
class Planner {
 public:
  /// `morsel_rows` is the scan-morsel size handed to the leaf nodes
  /// (0 = partition-granular streams, the pre-morsel behavior).
  /// `ctx` — when non-null — is the statement's QueryContext; every
  /// planned node that loops over batches or claims morsels polls it,
  /// and memory-hungry operators charge its MemoryTracker. The context
  /// must outlive the plan's execution.
  /// `enable_expr_compile` gates every vectorized choice (the fused
  /// fast path, the general pipeline, per-node programs): off plans
  /// the pure interpreted row path, the differential oracle.
  /// `bytecode_cache` — optional — deduplicates compiled programs
  /// across statements; it must outlive the plan.
  /// `views` — optional — is the maintained-view registry: when set,
  /// eligible global n,L,Q aggregates plan a MaintainedViewScan that
  /// serves (and incrementally refreshes) materialized per-morsel
  /// partials instead of rescanning; it must outlive the plan.
  Planner(storage::Catalog* catalog, const udf::UdfRegistry* registry,
          ThreadPool* pool,
          size_t batch_capacity = RowBatch::kDefaultCapacity,
          bool enable_column_cache = true,
          uint64_t morsel_rows = kDefaultMorselRows,
          const QueryContext* ctx = nullptr,
          bool enable_expr_compile = true,
          BytecodeCache* bytecode_cache = nullptr,
          ViewRegistry* views = nullptr);

  StatusOr<PhysicalPlan> Plan(const SelectStatement& select) const;

 private:
  storage::Catalog* catalog_;
  const udf::UdfRegistry* registry_;
  ThreadPool* pool_;
  size_t batch_capacity_;
  bool enable_column_cache_;
  uint64_t morsel_rows_;
  const QueryContext* ctx_;
  bool enable_expr_compile_;
  BytecodeCache* bytecode_cache_;
  ViewRegistry* views_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_PLANNER_H_
