#include "engine/exec/bytecode.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "engine/expr.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {

using storage::DataType;
using storage::Datum;
using storage::NullBitGet;
using storage::NullBitmapWords;
using storage::NullBitSet;

// ---------------------------------------------------------------------------
// ExprVM
// ---------------------------------------------------------------------------

namespace {

bool AnyBitSet(const std::vector<uint64_t>& words) {
  for (uint64_t w : words) {
    if (w != 0) return true;
  }
  return false;
}

/// Runs `prog` over `n` rows. `load` fills the destination register of
/// each kLoadCol instruction (the only input-dependent opcode), so the
/// row-gather and span-copy entry points share every operator loop —
/// and therefore produce bit-identical results by construction.
template <typename Loader>
void RunProgram(const CompiledExpr& prog, size_t n, std::vector<ExprVM::Reg>* regs,
                Loader load) {
  if (regs->size() < prog.num_regs()) regs->resize(prog.num_regs());
  const size_t words = NullBitmapWords(n);

  auto prep = [&](ExprVM::Reg& r, DataType t) {
    if (t == DataType::kDouble) {
      r.d.resize(n);
    } else {
      r.i.resize(n);
    }
    r.nulls.assign(words, 0);
    r.has_nulls = false;
  };
  auto copy_nulls = [&](ExprVM::Reg& dst, const ExprVM::Reg& a) {
    if (!a.has_nulls) return;
    dst.nulls = a.nulls;
    dst.has_nulls = true;
  };
  auto union_nulls = [&](ExprVM::Reg& dst, const ExprVM::Reg& a,
                         const ExprVM::Reg& b) {
    if (!a.has_nulls && !b.has_nulls) return;
    for (size_t w = 0; w < words; ++w) {
      dst.nulls[w] = a.nulls[w] | b.nulls[w];
    }
    dst.has_nulls = true;
  };

  for (const Instr& ins : prog.instructions()) {
    ExprVM::Reg& dst = (*regs)[ins.dst];
    // Registers are SSA (one def each), so operand aliasing with dst
    // cannot occur and every loop may write dst freely.
    switch (ins.op) {
      case OpCode::kLoadCol: {
        prep(dst, ins.type);
        load(ins, &dst);
        break;
      }
      case OpCode::kLoadConst: {
        prep(dst, ins.type);
        if (ins.const_null) {
          dst.nulls.assign(words, ~uint64_t{0});
          dst.has_nulls = true;
        }
        if (ins.type == DataType::kDouble) {
          std::fill(dst.d.begin(), dst.d.end(),
                    ins.const_null ? 0.0 : ins.const_d);
        } else {
          std::fill(dst.i.begin(), dst.i.end(),
                    ins.const_null ? int64_t{0} : ins.const_i);
        }
        break;
      }
      case OpCode::kCastDouble: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kDouble);
        for (size_t r = 0; r < n; ++r) {
          dst.d[r] = static_cast<double>(a.i[r]);
        }
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kTruthD: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kInt64);
        for (size_t r = 0; r < n; ++r) dst.i[r] = a.d[r] != 0.0 ? 1 : 0;
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kTruthI: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kInt64);
        for (size_t r = 0; r < n; ++r) dst.i[r] = a.i[r] != 0 ? 1 : 0;
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kNegI: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kInt64);
        for (size_t r = 0; r < n; ++r) dst.i[r] = -a.i[r];
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kNegD: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kDouble);
        for (size_t r = 0; r < n; ++r) dst.d[r] = -a.d[r];
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kNot: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kInt64);
        for (size_t r = 0; r < n; ++r) dst.i[r] = a.i[r] == 0 ? 1 : 0;
        copy_nulls(dst, a);
        break;
      }
      case OpCode::kAddI:
      case OpCode::kSubI:
      case OpCode::kMulI: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kInt64);
        if (ins.op == OpCode::kAddI) {
          for (size_t r = 0; r < n; ++r) dst.i[r] = a.i[r] + b.i[r];
        } else if (ins.op == OpCode::kSubI) {
          for (size_t r = 0; r < n; ++r) dst.i[r] = a.i[r] - b.i[r];
        } else {
          for (size_t r = 0; r < n; ++r) dst.i[r] = a.i[r] * b.i[r];
        }
        union_nulls(dst, a, b);
        break;
      }
      case OpCode::kModI: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kInt64);
        union_nulls(dst, a, b);
        for (size_t r = 0; r < n; ++r) {
          if (b.i[r] == 0) {
            dst.i[r] = 0;
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          } else {
            dst.i[r] = a.i[r] % b.i[r];
          }
        }
        break;
      }
      case OpCode::kAddD:
      case OpCode::kSubD:
      case OpCode::kMulD: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kDouble);
        if (ins.op == OpCode::kAddD) {
          for (size_t r = 0; r < n; ++r) dst.d[r] = a.d[r] + b.d[r];
        } else if (ins.op == OpCode::kSubD) {
          for (size_t r = 0; r < n; ++r) dst.d[r] = a.d[r] - b.d[r];
        } else {
          for (size_t r = 0; r < n; ++r) dst.d[r] = a.d[r] * b.d[r];
        }
        union_nulls(dst, a, b);
        break;
      }
      case OpCode::kDivD: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kDouble);
        union_nulls(dst, a, b);
        for (size_t r = 0; r < n; ++r) {
          if (b.d[r] == 0.0) {
            dst.d[r] = 0.0;
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          } else {
            dst.d[r] = a.d[r] / b.d[r];
          }
        }
        break;
      }
      case OpCode::kModD:
      case OpCode::kFmod: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kDouble);
        union_nulls(dst, a, b);
        for (size_t r = 0; r < n; ++r) {
          if (b.d[r] == 0.0) {
            dst.d[r] = 0.0;
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          } else {
            dst.d[r] = std::fmod(a.d[r], b.d[r]);
          }
        }
        break;
      }
      case OpCode::kCmpEq:
      case OpCode::kCmpNe:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kInt64);
        // The -1/0/1 ladder mirrors the interpreter's EvalComparison,
        // including its NaN behavior (NaN compares "equal").
        for (size_t r = 0; r < n; ++r) {
          const double av = a.d[r];
          const double bv = b.d[r];
          const int cmp = av < bv ? -1 : (av > bv ? 1 : 0);
          bool pass = false;
          switch (ins.op) {
            case OpCode::kCmpEq: pass = cmp == 0; break;
            case OpCode::kCmpNe: pass = cmp != 0; break;
            case OpCode::kCmpLt: pass = cmp < 0; break;
            case OpCode::kCmpLe: pass = cmp <= 0; break;
            case OpCode::kCmpGt: pass = cmp > 0; break;
            default: pass = cmp >= 0; break;
          }
          dst.i[r] = pass ? 1 : 0;
        }
        union_nulls(dst, a, b);
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kInt64);
        const bool is_and = ins.op == OpCode::kAnd;
        if (!a.has_nulls && !b.has_nulls) {
          for (size_t r = 0; r < n; ++r) {
            dst.i[r] = is_and ? (a.i[r] & b.i[r]) : (a.i[r] | b.i[r]);
          }
          break;
        }
        for (size_t r = 0; r < n; ++r) {
          const bool an = a.has_nulls && NullBitGet(a.nulls.data(), r);
          const bool bn = b.has_nulls && NullBitGet(b.nulls.data(), r);
          const bool at = !an && a.i[r] != 0;
          const bool bt = !bn && b.i[r] != 0;
          if (is_and) {
            if ((!an && !at) || (!bn && !bt)) {
              dst.i[r] = 0;  // a definite FALSE dominates
            } else if (an || bn) {
              dst.i[r] = 0;
              NullBitSet(dst.nulls.data(), r);
              dst.has_nulls = true;
            } else {
              dst.i[r] = 1;
            }
          } else {
            if (at || bt) {
              dst.i[r] = 1;  // a definite TRUE dominates
            } else if (an || bn) {
              dst.i[r] = 0;
              NullBitSet(dst.nulls.data(), r);
              dst.has_nulls = true;
            } else {
              dst.i[r] = 0;
            }
          }
        }
        break;
      }
      case OpCode::kIsNull:
      case OpCode::kIsNotNull: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kInt64);
        const bool want_null = ins.op == OpCode::kIsNull;
        for (size_t r = 0; r < n; ++r) {
          const bool is_null = a.has_nulls && NullBitGet(a.nulls.data(), r);
          dst.i[r] = is_null == want_null ? 1 : 0;
        }
        break;
      }
      case OpCode::kSqrt: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kDouble);
        copy_nulls(dst, a);
        for (size_t r = 0; r < n; ++r) {
          if (a.d[r] < 0.0) {
            dst.d[r] = 0.0;
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          } else {
            dst.d[r] = std::sqrt(a.d[r]);
          }
        }
        break;
      }
      case OpCode::kLn: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kDouble);
        copy_nulls(dst, a);
        for (size_t r = 0; r < n; ++r) {
          if (a.d[r] <= 0.0) {
            dst.d[r] = 0.0;
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          } else {
            dst.d[r] = std::log(a.d[r]);
          }
        }
        break;
      }
      case OpCode::kAbs:
      case OpCode::kExp:
      case OpCode::kFloor:
      case OpCode::kCeil:
      case OpCode::kRound: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        prep(dst, DataType::kDouble);
        copy_nulls(dst, a);
        switch (ins.op) {
          case OpCode::kAbs:
            for (size_t r = 0; r < n; ++r) dst.d[r] = std::fabs(a.d[r]);
            break;
          case OpCode::kExp:
            for (size_t r = 0; r < n; ++r) dst.d[r] = std::exp(a.d[r]);
            break;
          case OpCode::kFloor:
            for (size_t r = 0; r < n; ++r) dst.d[r] = std::floor(a.d[r]);
            break;
          case OpCode::kCeil:
            for (size_t r = 0; r < n; ++r) dst.d[r] = std::ceil(a.d[r]);
            break;
          default:
            for (size_t r = 0; r < n; ++r) dst.d[r] = std::round(a.d[r]);
            break;
        }
        break;
      }
      case OpCode::kPow: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kDouble);
        union_nulls(dst, a, b);
        for (size_t r = 0; r < n; ++r) dst.d[r] = std::pow(a.d[r], b.d[r]);
        break;
      }
      case OpCode::kLeast:
      case OpCode::kGreatest: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, DataType::kDouble);
        union_nulls(dst, a, b);
        // Fold direction matches the interpreter's running-best scan:
        // the newer operand (b) replaces the accumulator (a) only on a
        // strict win, so NaN ties resolve identically.
        if (ins.op == OpCode::kLeast) {
          for (size_t r = 0; r < n; ++r) {
            dst.d[r] = b.d[r] < a.d[r] ? b.d[r] : a.d[r];
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            dst.d[r] = b.d[r] > a.d[r] ? b.d[r] : a.d[r];
          }
        }
        break;
      }
      case OpCode::kCoalesce: {
        const ExprVM::Reg& a = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        prep(dst, ins.type);
        for (size_t r = 0; r < n; ++r) {
          const bool an = a.has_nulls && NullBitGet(a.nulls.data(), r);
          const ExprVM::Reg& src = an ? b : a;
          if (ins.type == DataType::kDouble) {
            dst.d[r] = src.d[r];
          } else {
            dst.i[r] = src.i[r];
          }
          if (an && b.has_nulls && NullBitGet(b.nulls.data(), r)) {
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          }
        }
        break;
      }
      case OpCode::kSelect: {
        const ExprVM::Reg& cond = (*regs)[ins.a];
        const ExprVM::Reg& b = (*regs)[ins.b];
        const ExprVM::Reg& c = (*regs)[ins.c];
        prep(dst, ins.type);
        for (size_t r = 0; r < n; ++r) {
          const bool taken =
              !(cond.has_nulls && NullBitGet(cond.nulls.data(), r)) &&
              cond.i[r] != 0;
          const ExprVM::Reg& src = taken ? b : c;
          if (ins.type == DataType::kDouble) {
            dst.d[r] = src.d[r];
          } else {
            dst.i[r] = src.i[r];
          }
          if (src.has_nulls && NullBitGet(src.nulls.data(), r)) {
            NullBitSet(dst.nulls.data(), r);
            dst.has_nulls = true;
          }
        }
        break;
      }
    }
  }
}

}  // namespace

void ExprVM::EvalRows(const CompiledExpr& prog, const storage::Row* rows,
                      size_t n) {
  RunProgram(prog, n, &regs_, [&](const Instr& ins, Reg* dst) {
    const size_t slot = ins.slot;
    if (ins.type == DataType::kDouble) {
      for (size_t r = 0; r < n; ++r) {
        const Datum& v = rows[r][slot];
        if (v.is_null()) {
          dst->d[r] = 0.0;
          NullBitSet(dst->nulls.data(), r);
          dst->has_nulls = true;
        } else {
          dst->d[r] = v.AsDouble();
        }
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        const Datum& v = rows[r][slot];
        if (v.is_null()) {
          dst->i[r] = 0;
          NullBitSet(dst->nulls.data(), r);
          dst->has_nulls = true;
        } else {
          dst->i[r] = v.int_value();
        }
      }
    }
  });
}

void ExprVM::EvalSpans(const CompiledExpr& prog, const ColumnSpanBatch& in,
                       const std::vector<int>& slot_to_col, size_t n) {
  RunProgram(prog, n, &regs_, [&](const Instr& ins, Reg* dst) {
    const int col = slot_to_col[ins.slot];
    if (ins.type == DataType::kDouble) {
      const double* src = in.doubles[col];
      std::memcpy(dst->d.data(), src, n * sizeof(double));
    } else {
      const int64_t* src = in.ints[col];
      std::memcpy(dst->i.data(), src, n * sizeof(int64_t));
    }
    const uint64_t* nb = in.null_bits[col];
    if (nb != nullptr) {
      std::memcpy(dst->nulls.data(), nb,
                  NullBitmapWords(n) * sizeof(uint64_t));
      dst->has_nulls = AnyBitSet(dst->nulls);
    }
  });
}

Datum BoxRegValue(const ExprVM::Reg& reg, DataType type, size_t r) {
  if (reg.has_nulls && NullBitGet(reg.nulls.data(), r)) {
    return Datum::Null(type);
  }
  return type == DataType::kDouble ? Datum::Double(reg.d[r])
                                   : Datum::Int64(reg.i[r]);
}

void ExprVM::BoxResult(const CompiledExpr& prog, size_t n,
                       Datum* out) const {
  const Reg& reg = regs_[prog.result_reg()];
  const DataType type = prog.result_type();
  for (size_t r = 0; r < n; ++r) out[r] = BoxRegValue(reg, type, r);
}

void ExprVM::CopyResult(const CompiledExpr& prog, size_t n, Reg* out) const {
  const Reg& reg = regs_[prog.result_reg()];
  if (prog.result_type() == DataType::kDouble) {
    out->d.assign(reg.d.begin(), reg.d.begin() + n);
  } else {
    out->i.assign(reg.i.begin(), reg.i.begin() + n);
  }
  out->nulls.assign(reg.nulls.begin(),
                    reg.nulls.begin() + NullBitmapWords(n));
  out->has_nulls = reg.has_nulls;
}

void ExprVM::AndResultIntoKeep(const CompiledExpr& prog, size_t n,
                               uint8_t* keep) const {
  const Reg& reg = regs_[prog.result_reg()];
  const bool is_double = prog.result_type() == DataType::kDouble;
  for (size_t r = 0; r < n; ++r) {
    if (reg.has_nulls && NullBitGet(reg.nulls.data(), r)) {
      keep[r] = 0;
      continue;
    }
    const bool truthy = is_double ? reg.d[r] != 0.0 : reg.i[r] != 0;
    if (!truthy) keep[r] = 0;
  }
}

// ---------------------------------------------------------------------------
// BytecodeBuilder
// ---------------------------------------------------------------------------

struct BytecodeBuilder::Value {
  storage::DataType type = storage::DataType::kDouble;
  bool is_const = false;
  storage::Datum cval;
  int reg = -1;  // materialized register, -1 until needed
};

BytecodeBuilder::BytecodeBuilder() = default;
BytecodeBuilder::~BytecodeBuilder() = default;

bool BytecodeBuilder::Valid(ValueId v) const {
  return v >= 0 && static_cast<size_t>(v) < values_.size();
}

DataType BytecodeBuilder::TypeOf(ValueId v) const { return values_[v].type; }

BytecodeBuilder::ValueId BytecodeBuilder::Constant(const Datum& v) {
  if (v.type() == DataType::kVarchar) return kInvalidValue;
  Value val;
  val.type = v.type();
  val.is_const = true;
  val.cval = v;
  values_.push_back(std::move(val));
  return static_cast<ValueId>(values_.size() - 1);
}

BytecodeBuilder::ValueId BytecodeBuilder::LoadColumn(size_t slot,
                                                     DataType type) {
  if (type == DataType::kVarchar) return kInvalidValue;
  if (slot > UINT32_MAX) return kInvalidValue;
  Instr ins;
  ins.op = OpCode::kLoadCol;
  ins.type = type;
  ins.slot = static_cast<uint32_t>(slot);
  slots_.push_back(slot);
  return Emit(ins, type);
}

BytecodeBuilder::ValueId BytecodeBuilder::Emit(Instr instr, DataType type) {
  if (num_regs_ >= UINT16_MAX) return kInvalidValue;
  instr.dst = static_cast<uint16_t>(num_regs_++);
  instr.type = type;
  instrs_.push_back(instr);
  Value val;
  val.type = type;
  val.reg = instr.dst;
  values_.push_back(std::move(val));
  return static_cast<ValueId>(values_.size() - 1);
}

uint16_t BytecodeBuilder::Reg(ValueId v) {
  Value& val = values_[v];
  if (val.reg >= 0) return static_cast<uint16_t>(val.reg);
  // A constant used by a non-foldable consumer: materialize one
  // broadcast load (per use site is fine — trees are small).
  Instr ins;
  ins.op = OpCode::kLoadConst;
  ins.type = val.type;
  ins.const_null = val.cval.is_null();
  if (!ins.const_null) {
    if (val.type == DataType::kDouble) {
      ins.const_d = val.cval.double_value();
    } else {
      ins.const_i = val.cval.int_value();
    }
  }
  ins.dst = static_cast<uint16_t>(num_regs_++);
  instrs_.push_back(ins);
  val.reg = ins.dst;
  return ins.dst;
}

BytecodeBuilder::ValueId BytecodeBuilder::EmitOrFold(
    Instr instr, DataType type, std::initializer_list<ValueId> operands) {
  bool all_const = true;
  for (ValueId v : operands) {
    if (!Valid(v)) return kInvalidValue;
    all_const = all_const && values_[v].is_const;
  }
  if (all_const && operands.size() > 0) {
    // Constant folding: run the single instruction over a one-row
    // batch through the VM itself, so the folded value is computed by
    // exactly the code that would have run per batch.
    CompiledExpr tmp;
    uint16_t opregs[3] = {0, 0, 0};
    size_t k = 0;
    for (ValueId v : operands) {
      const Value& val = values_[v];
      Instr load;
      load.op = OpCode::kLoadConst;
      load.type = val.type;
      load.const_null = val.cval.is_null();
      if (!load.const_null) {
        if (val.type == DataType::kDouble) {
          load.const_d = val.cval.double_value();
        } else {
          load.const_i = val.cval.int_value();
        }
      }
      load.dst = static_cast<uint16_t>(k);
      opregs[k++] = load.dst;
      tmp.instrs_.push_back(load);
    }
    instr.a = opregs[0];
    instr.b = operands.size() > 1 ? opregs[1] : opregs[0];
    instr.c = operands.size() > 2 ? opregs[2] : opregs[0];
    instr.dst = static_cast<uint16_t>(k);
    instr.type = type;
    tmp.instrs_.push_back(instr);
    tmp.num_regs_ = k + 1;
    tmp.result_reg_ = instr.dst;
    tmp.result_type_ = type;
    ExprVM vm;
    vm.EvalRows(tmp, nullptr, 1);
    return Constant(BoxRegValue(vm.result(tmp), type, 0));
  }
  size_t k = 0;
  for (ValueId v : operands) {
    const uint16_t reg = Reg(v);
    if (k == 0) instr.a = reg;
    if (k == 1) instr.b = reg;
    if (k == 2) instr.c = reg;
    ++k;
  }
  return Emit(instr, type);
}

BytecodeBuilder::ValueId BytecodeBuilder::CastDouble(ValueId v) {
  if (!Valid(v)) return kInvalidValue;
  if (TypeOf(v) == DataType::kDouble) return v;
  Instr ins;
  ins.op = OpCode::kCastDouble;
  return EmitOrFold(ins, DataType::kDouble, {v});
}

BytecodeBuilder::ValueId BytecodeBuilder::Truth(ValueId v) {
  if (!Valid(v)) return kInvalidValue;
  Instr ins;
  ins.op = TypeOf(v) == DataType::kDouble ? OpCode::kTruthD : OpCode::kTruthI;
  return EmitOrFold(ins, DataType::kInt64, {v});
}

BytecodeBuilder::ValueId BytecodeBuilder::Unary(UnaryOp op, ValueId v) {
  if (!Valid(v)) return kInvalidValue;
  if (op == UnaryOp::kNegate) {
    Instr ins;
    const DataType t = TypeOf(v);
    ins.op = t == DataType::kDouble ? OpCode::kNegD : OpCode::kNegI;
    return EmitOrFold(ins, t, {v});
  }
  // NOT: truth-normalize, then flip with NULL preserved (3VL).
  const ValueId t = Truth(v);
  if (!Valid(t)) return kInvalidValue;
  Instr ins;
  ins.op = OpCode::kNot;
  return EmitOrFold(ins, DataType::kInt64, {t});
}

BytecodeBuilder::ValueId BytecodeBuilder::Binary(BinaryOp op, ValueId l,
                                                 ValueId r) {
  if (!Valid(l) || !Valid(r)) return kInvalidValue;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kMod: {
      const bool both_int = TypeOf(l) == DataType::kInt64 &&
                            TypeOf(r) == DataType::kInt64;
      Instr ins;
      if (both_int) {
        switch (op) {
          case BinaryOp::kAdd: ins.op = OpCode::kAddI; break;
          case BinaryOp::kSub: ins.op = OpCode::kSubI; break;
          case BinaryOp::kMul: ins.op = OpCode::kMulI; break;
          default: ins.op = OpCode::kModI; break;
        }
        return EmitOrFold(ins, DataType::kInt64, {l, r});
      }
      switch (op) {
        case BinaryOp::kAdd: ins.op = OpCode::kAddD; break;
        case BinaryOp::kSub: ins.op = OpCode::kSubD; break;
        case BinaryOp::kMul: ins.op = OpCode::kMulD; break;
        default: ins.op = OpCode::kModD; break;
      }
      return EmitOrFold(ins, DataType::kDouble, {CastDouble(l), CastDouble(r)});
    }
    case BinaryOp::kDiv: {
      Instr ins;
      ins.op = OpCode::kDivD;
      return EmitOrFold(ins, DataType::kDouble, {CastDouble(l), CastDouble(r)});
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      Instr ins;
      switch (op) {
        case BinaryOp::kEq: ins.op = OpCode::kCmpEq; break;
        case BinaryOp::kNe: ins.op = OpCode::kCmpNe; break;
        case BinaryOp::kLt: ins.op = OpCode::kCmpLt; break;
        case BinaryOp::kLe: ins.op = OpCode::kCmpLe; break;
        case BinaryOp::kGt: ins.op = OpCode::kCmpGt; break;
        default: ins.op = OpCode::kCmpGe; break;
      }
      return EmitOrFold(ins, DataType::kInt64, {CastDouble(l), CastDouble(r)});
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      // Eager evaluation is safe: the compilable subset is pure and
      // total, so the interpreter's short-circuit order is
      // unobservable.
      Instr ins;
      ins.op = op == BinaryOp::kAnd ? OpCode::kAnd : OpCode::kOr;
      return EmitOrFold(ins, DataType::kInt64, {Truth(l), Truth(r)});
    }
  }
  return kInvalidValue;
}

BytecodeBuilder::ValueId BytecodeBuilder::IsNull(ValueId v, bool negated) {
  if (!Valid(v)) return kInvalidValue;
  Instr ins;
  ins.op = negated ? OpCode::kIsNotNull : OpCode::kIsNull;
  return EmitOrFold(ins, DataType::kInt64, {v});
}

BytecodeBuilder::ValueId BytecodeBuilder::Call1(ScalarFn1 fn, ValueId v) {
  if (!Valid(v)) return kInvalidValue;
  Instr ins;
  switch (fn) {
    case ScalarFn1::kSqrt: ins.op = OpCode::kSqrt; break;
    case ScalarFn1::kAbs: ins.op = OpCode::kAbs; break;
    case ScalarFn1::kExp: ins.op = OpCode::kExp; break;
    case ScalarFn1::kLn: ins.op = OpCode::kLn; break;
    case ScalarFn1::kFloor: ins.op = OpCode::kFloor; break;
    case ScalarFn1::kCeil: ins.op = OpCode::kCeil; break;
    case ScalarFn1::kRound: ins.op = OpCode::kRound; break;
  }
  return EmitOrFold(ins, DataType::kDouble, {CastDouble(v)});
}

BytecodeBuilder::ValueId BytecodeBuilder::Power(ValueId x, ValueId y) {
  if (!Valid(x) || !Valid(y)) return kInvalidValue;
  Instr ins;
  ins.op = OpCode::kPow;
  return EmitOrFold(ins, DataType::kDouble, {CastDouble(x), CastDouble(y)});
}

BytecodeBuilder::ValueId BytecodeBuilder::FMod(ValueId x, ValueId y) {
  if (!Valid(x) || !Valid(y)) return kInvalidValue;
  Instr ins;
  ins.op = OpCode::kFmod;
  return EmitOrFold(ins, DataType::kDouble, {CastDouble(x), CastDouble(y)});
}

BytecodeBuilder::ValueId BytecodeBuilder::Least(
    const std::vector<ValueId>& args) {
  if (args.empty()) return kInvalidValue;
  ValueId acc = CastDouble(args[0]);
  for (size_t i = 1; i < args.size() && Valid(acc); ++i) {
    Instr ins;
    ins.op = OpCode::kLeast;
    acc = EmitOrFold(ins, DataType::kDouble, {acc, CastDouble(args[i])});
  }
  return acc;
}

BytecodeBuilder::ValueId BytecodeBuilder::Greatest(
    const std::vector<ValueId>& args) {
  if (args.empty()) return kInvalidValue;
  ValueId acc = CastDouble(args[0]);
  for (size_t i = 1; i < args.size() && Valid(acc); ++i) {
    Instr ins;
    ins.op = OpCode::kGreatest;
    acc = EmitOrFold(ins, DataType::kDouble, {acc, CastDouble(args[i])});
  }
  return acc;
}

BytecodeBuilder::ValueId BytecodeBuilder::Coalesce(
    const std::vector<ValueId>& args) {
  if (args.empty()) return kInvalidValue;
  for (ValueId v : args) {
    if (!Valid(v) || TypeOf(v) != DataType::kDouble) return kInvalidValue;
  }
  ValueId acc = args[0];
  for (size_t i = 1; i < args.size() && Valid(acc); ++i) {
    Instr ins;
    ins.op = OpCode::kCoalesce;
    acc = EmitOrFold(ins, DataType::kDouble, {acc, args[i]});
  }
  return acc;
}

BytecodeBuilder::ValueId BytecodeBuilder::Case(
    const std::vector<std::pair<ValueId, ValueId>>& branches,
    ValueId else_value, DataType result_type) {
  if (branches.empty() || result_type == DataType::kVarchar) {
    return kInvalidValue;
  }
  // All alternatives must share one static numeric type; a mixed CASE
  // returns dynamically-typed Datums the typed register cannot
  // reproduce, so it stays interpreted.
  for (const auto& [cond, value] : branches) {
    if (!Valid(cond) || !Valid(value) || TypeOf(value) != result_type) {
      return kInvalidValue;
    }
  }
  ValueId acc = else_value;
  if (acc == kInvalidValue) {
    acc = Constant(Datum::Null(result_type));
  } else if (TypeOf(acc) != result_type) {
    return kInvalidValue;
  }
  for (size_t i = branches.size(); i-- > 0 && Valid(acc);) {
    Instr ins;
    ins.op = OpCode::kSelect;
    acc = EmitOrFold(ins, result_type,
                     {Truth(branches[i].first), branches[i].second, acc});
  }
  return acc;
}

namespace {

void AppendBytes(std::string* key, const void* p, size_t size) {
  key->append(static_cast<const char*>(p), size);
}

std::string SerializeProgram(const std::vector<Instr>& instrs,
                             uint16_t result_reg, DataType result_type) {
  std::string key;
  key.reserve(instrs.size() * 32 + 8);
  for (const Instr& ins : instrs) {
    key.push_back(static_cast<char>(ins.op));
    key.push_back(static_cast<char>(ins.type));
    key.push_back(static_cast<char>(ins.const_null));
    AppendBytes(&key, &ins.dst, sizeof(ins.dst));
    AppendBytes(&key, &ins.a, sizeof(ins.a));
    AppendBytes(&key, &ins.b, sizeof(ins.b));
    AppendBytes(&key, &ins.c, sizeof(ins.c));
    AppendBytes(&key, &ins.slot, sizeof(ins.slot));
    AppendBytes(&key, &ins.const_d, sizeof(ins.const_d));
    AppendBytes(&key, &ins.const_i, sizeof(ins.const_i));
  }
  AppendBytes(&key, &result_reg, sizeof(result_reg));
  key.push_back(static_cast<char>(result_type));
  return key;
}

}  // namespace

std::shared_ptr<CompiledExpr> BytecodeBuilder::Finish(ValueId root) {
  if (!Valid(root)) return nullptr;
  const uint16_t result_reg = Reg(root);
  auto prog = std::make_shared<CompiledExpr>();
  prog->instrs_ = std::move(instrs_);
  prog->num_regs_ = num_regs_;
  prog->result_reg_ = result_reg;
  prog->result_type_ = TypeOf(root);
  std::sort(slots_.begin(), slots_.end());
  slots_.erase(std::unique(slots_.begin(), slots_.end()), slots_.end());
  prog->slots_ = std::move(slots_);
  prog->key_ =
      SerializeProgram(prog->instrs_, result_reg, prog->result_type_);
  return prog;
}

// ---------------------------------------------------------------------------
// Cache + entry point
// ---------------------------------------------------------------------------

CompiledExprPtr BytecodeCache::Intern(std::shared_ptr<CompiledExpr> prog) {
  // Registry lookups are per-compile (statement planning), never
  // per-row; references are re-resolved each time because
  // ResetForTest invalidates cached pointers.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(prog->cache_key());
  if (it != cache_.end()) {
    MetricsRegistry::Global().counter("bytecode.cache_hits").Increment();
    return it->second;
  }
  if (cache_.size() >= kMaxEntries) cache_.clear();
  CompiledExprPtr shared = std::move(prog);
  cache_.emplace(shared->cache_key(), shared);
  MetricsRegistry::Global().counter("bytecode.compiles").Increment();
  return shared;
}

size_t BytecodeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

CompiledExprPtr CompileExpr(const BoundExpr& expr, BytecodeCache* cache) {
#if defined(NLQ_FAILPOINTS)
  // Armed `expr_compile` forces the interpreted fallback everywhere.
  // Guarded by the build flag (not just Check) so Release binaries
  // stay free of failpoint symbols.
  if (!failpoint::Check("expr_compile").ok()) return nullptr;
#endif
  BytecodeBuilder builder;
  const int root = expr.EmitBytecode(&builder);
  if (root < 0) return nullptr;
  std::shared_ptr<CompiledExpr> prog = builder.Finish(root);
  if (prog == nullptr) return nullptr;
  if (cache != nullptr) return cache->Intern(std::move(prog));
  MetricsRegistry::Global().counter("bytecode.compiles").Increment();
  return prog;
}

}  // namespace nlq::engine::exec
