#ifndef NLQ_ENGINE_EXEC_BYTECODE_H_
#define NLQ_ENGINE_EXEC_BYTECODE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/ast.h"
#include "engine/exec/column_stream.h"
#include "storage/value.h"

namespace nlq::engine {
class BoundExpr;  // engine/expr.h (included by bytecode.cc only)
}  // namespace nlq::engine

namespace nlq::engine::exec {

using nlq::engine::BoundExpr;

/// Register-based expression bytecode (DESIGN.md §11).
///
/// A compiled program is a flat instruction array evaluated batch at a
/// time: every instruction reads whole operand registers (one value
/// lane of `n` doubles or int64s plus a null bitmap) and writes one
/// destination register. NULL semantics are "compute everywhere, mask
/// by bitmap": null lanes always hold the defined value 0/0.0, ops
/// propagate bitmaps (union for strict ops, the SQL three-valued rules
/// for AND/OR), and consumers skip rows whose result bit is set — the
/// same skip-row rule the interpreted Datum path implements with
/// is_null() checks. Every opcode is total (division by zero, sqrt of
/// a negative, ln of a non-positive all yield NULL, exactly like
/// expr.cc), so evaluation cannot fail and needs no per-row error
/// plumbing.
enum class OpCode : uint8_t {
  kLoadCol,    // dst <- input slot `slot` (type from instr.type)
  kLoadConst,  // dst <- broadcast constant
  kCastDouble, // dst.d <- (double) a.i
  kTruthD,     // dst.i <- a.d != 0 (bool; NULL stays NULL)
  kTruthI,     // dst.i <- a.i != 0
  kNegI,       // dst.i <- -a.i
  kNegD,       // dst.d <- -a.d
  kNot,        // dst.i <- !a.i (3VL: NULL stays NULL)
  kAddI, kSubI, kMulI,
  kModI,       // b == 0 -> NULL
  kAddD, kSubD, kMulD,
  kDivD,       // b == 0.0 -> NULL
  kModD,       // fmod; b == 0.0 -> NULL
  // Comparisons take double operands (ints are cast first — the
  // interpreter compares via Datum::AsDouble) and produce bool int64.
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
  kAnd, kOr,   // 3VL over bool regs (false/true dominate resp.)
  kIsNull,     // dst.i <- null(a); never NULL itself
  kIsNotNull,
  kSqrt,       // a < 0 -> NULL
  kAbs, kExp,
  kLn,         // a <= 0 -> NULL
  kFloor, kCeil, kRound,
  kPow,
  kFmod,       // builtin mod(x, y): doubles, y == 0 -> NULL
  kLeast,      // dst.d <- b < a ? b : a; NULL if either is
  kGreatest,   // dst.d <- b > a ? b : a; NULL if either is
  kCoalesce,   // dst <- a unless null(a), else b (same-typed lanes)
  kSelect,     // dst <- truth(a) ? b : c (a bool; NULL cond -> c)
};

/// One instruction. `dst`/`a`/`b`/`c` are register numbers; `type` is
/// the destination's lane type (kDouble or kInt64 — VARCHAR never
/// compiles); `slot`/const_* are the kLoadCol / kLoadConst payloads.
struct Instr {
  OpCode op = OpCode::kLoadConst;
  storage::DataType type = storage::DataType::kDouble;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint32_t slot = 0;
  bool const_null = false;
  double const_d = 0.0;
  int64_t const_i = 0;
};

/// An immutable compiled program. Shared (via the cache) between
/// plans and streams; all evaluation state lives in ExprVM.
class CompiledExpr {
 public:
  const std::vector<Instr>& instructions() const { return instrs_; }
  size_t num_instructions() const { return instrs_.size(); }
  size_t num_regs() const { return num_regs_; }
  uint16_t result_reg() const { return result_reg_; }
  storage::DataType result_type() const { return result_type_; }

  /// Input slots the program reads, sorted unique — the planner
  /// projects exactly these into the columnar scan.
  const std::vector<size_t>& referenced_slots() const { return slots_; }

  /// Byte-serialized program, the compile-cache key: two statements
  /// producing identical instruction streams share one entry.
  const std::string& cache_key() const { return key_; }

 private:
  friend class BytecodeBuilder;
  std::vector<Instr> instrs_;
  size_t num_regs_ = 0;
  uint16_t result_reg_ = 0;
  storage::DataType result_type_ = storage::DataType::kDouble;
  std::vector<size_t> slots_;
  std::string key_;
};

using CompiledExprPtr = std::shared_ptr<const CompiledExpr>;

/// Unary builtin functions the bytecode implements directly.
enum class ScalarFn1 : uint8_t {
  kSqrt, kAbs, kExp, kLn, kFloor, kCeil, kRound,
};

/// Emission interface BoundExpr::EmitBytecode targets. Values are SSA:
/// every emit returns a fresh ValueId (or kInvalidValue when the
/// construct cannot compile — the caller then falls back to the
/// interpreter). The builder applies the interpreter's typing rules
/// (int arithmetic stays int, everything else widens to double,
/// comparisons go through double) and folds constant subtrees at
/// emission time by evaluating the would-be instruction over a
/// one-row batch — the folded semantics are the VM's own, so
/// `price * (1 + 0.07)` compiles to load, load-const 1.07, mul.
class BytecodeBuilder {
 public:
  using ValueId = int;
  static constexpr ValueId kInvalidValue = -1;

  BytecodeBuilder();
  ~BytecodeBuilder();

  /// Numeric or NULL literal; VARCHAR returns kInvalidValue.
  ValueId Constant(const storage::Datum& v);
  /// Input slot of numeric type; VARCHAR returns kInvalidValue.
  ValueId LoadColumn(size_t slot, storage::DataType type);
  ValueId Unary(UnaryOp op, ValueId v);
  ValueId Binary(BinaryOp op, ValueId l, ValueId r);
  ValueId IsNull(ValueId v, bool negated);
  ValueId Call1(ScalarFn1 fn, ValueId v);
  ValueId Power(ValueId x, ValueId y);
  ValueId FMod(ValueId x, ValueId y);
  /// least/greatest fold left over double-widened args (any NULL arg
  /// makes the result NULL, like the interpreter).
  ValueId Least(const std::vector<ValueId>& args);
  ValueId Greatest(const std::vector<ValueId>& args);
  /// First non-NULL arg. Compiles only when every arg is DOUBLE: the
  /// interpreter returns the winning arg's dynamic Datum unchanged
  /// (and NULL-of-DOUBLE when all are NULL), which a typed register
  /// can only reproduce for an all-double argument list.
  ValueId Coalesce(const std::vector<ValueId>& args);
  /// CASE WHEN chain; branches/else must share one static type.
  ValueId Case(const std::vector<std::pair<ValueId, ValueId>>& branches,
               ValueId else_value, storage::DataType result_type);

  /// Seals the program with `root` as its result. Returns nullptr if
  /// root is invalid.
  std::shared_ptr<CompiledExpr> Finish(ValueId root);

 private:
  struct Value;
  ValueId Emit(Instr instr, storage::DataType type);
  ValueId EmitOrFold(Instr instr, storage::DataType type,
                     std::initializer_list<ValueId> operands);
  /// Materializes a (possibly constant) value into a register.
  uint16_t Reg(ValueId v);
  ValueId CastDouble(ValueId v);
  ValueId Truth(ValueId v);
  bool Valid(ValueId v) const;
  storage::DataType TypeOf(ValueId v) const;

  std::vector<Value> values_;
  std::vector<Instr> instrs_;
  size_t num_regs_ = 0;
  std::vector<size_t> slots_;
};

/// Per-stream evaluation scratch: the register file plus gather
/// buffers. One VM serves any number of programs/batches; register
/// storage is sized to the largest (program, batch) seen and reused.
/// Not thread-safe — each stream owns its VM, mirroring how each row
/// stream owns its Datum scratch.
class ExprVM {
 public:
  /// One register's lanes. Exactly one of d/i is meaningful, by the
  /// instruction's type; null lanes hold 0/0.0.
  struct Reg {
    std::vector<double> d;
    std::vector<int64_t> i;
    std::vector<uint64_t> nulls;
    bool has_nulls = false;
  };

  /// Evaluates `prog` over `n` materialized rows (gathering by slot).
  void EvalRows(const CompiledExpr& prog, const storage::Row* rows, size_t n);

  /// Evaluates `prog` over column spans. `slot_to_col[slot]` maps each
  /// referenced input slot to its index in `in`'s columns.
  void EvalSpans(const CompiledExpr& prog, const ColumnSpanBatch& in,
                 const std::vector<int>& slot_to_col, size_t n);

  /// The result register after an Eval call for `prog`.
  const Reg& result(const CompiledExpr& prog) const {
    return regs_[prog.result_reg()];
  }

  /// Boxes the result into Datums (NULL bits become typed SQL NULLs).
  void BoxResult(const CompiledExpr& prog, size_t n,
                 storage::Datum* out) const;

  /// Copies the result register out of the VM (so several programs'
  /// results can be held at once while the VM is reused).
  void CopyResult(const CompiledExpr& prog, size_t n, Reg* out) const;

  /// ANDs the result's truth value into `keep` (row kept only when
  /// the verdict is non-NULL and non-zero — FilterNode's rule).
  void AndResultIntoKeep(const CompiledExpr& prog, size_t n,
                         uint8_t* keep) const;

 private:
  std::vector<Reg> regs_;
};

/// Boxes one lane of a VM register as a Datum of `type`.
storage::Datum BoxRegValue(const ExprVM::Reg& reg, storage::DataType type,
                           size_t r);

/// Process-wide-per-Database compile cache, keyed by the serialized
/// program. Bounded; overflowing clears it (compiles are per-statement
/// rare, so the bound only guards runaway schema churn).
class BytecodeCache {
 public:
  /// Deduplicates `prog` against the cache: returns the cached twin
  /// (counting `bytecode.cache_hits`) or inserts it (counting
  /// `bytecode.compiles`). Thread-safe.
  CompiledExprPtr Intern(std::shared_ptr<CompiledExpr> prog);

  size_t size() const;

 private:
  static constexpr size_t kMaxEntries = 4096;
  mutable std::mutex mu_;
  std::unordered_map<std::string, CompiledExprPtr> cache_;
};

/// Compiles `expr` to bytecode, interning through `cache` when given.
/// Returns nullptr — interpreted fallback — when the tree contains a
/// construct the bytecode cannot express (VARCHAR operands, scalar
/// UDFs, aggregate refs, mixed-type COALESCE/CASE) or when the
/// `expr_compile` failpoint is armed.
CompiledExprPtr CompileExpr(const BoundExpr& expr, BytecodeCache* cache);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_BYTECODE_H_
