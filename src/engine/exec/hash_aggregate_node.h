#ifndef NLQ_ENGINE_EXEC_HASH_AGGREGATE_NODE_H_
#define NLQ_ENGINE_EXEC_HASH_AGGREGATE_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/threadpool.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// Parallel hash aggregation with the aggregate-UDF four-phase
/// protocol (INIT / ROW / MERGE / FINALIZE), unchanged from the
/// monolithic executor so results stay byte-identical:
///
///   INIT      — per (stream, group): builtin state zeroed; aggregate
///               UDFs allocate their state inside a fresh 64 KB
///               HeapSegment (the Teradata per-thread heap);
///   ROW       — each child stream is drained on the worker pool into
///               its own hash table; GROUP BY keys and aggregate
///               arguments are evaluated batch-at-a-time;
///   MERGE     — partial per-stream states fold into stream 0's table
///               (the paper's "partial result aggregation ... by a
///               master thread");
///   FINALIZE  — per group: finalize aggregates, apply HAVING, and
///               evaluate the SELECT projections over (keys, aggs).
///
/// Output: one stream of final result rows.
class HashAggregateNode : public PlanNode {
 public:
  /// `agg` carries the bound GROUP BY keys, aggregate specs and
  /// per-SELECT-item projections; when `has_having` is true the last
  /// projection is the HAVING predicate and `num_output` projections
  /// form the result row.
  HashAggregateNode(PlanNodePtr child, BoundAggregation agg, bool has_having,
                    std::string having_text, size_t num_output,
                    ThreadPool* pool, size_t batch_capacity,
                    const QueryContext* ctx = nullptr);

  const char* name() const override { return "HashAggregate"; }
  std::string annotation() const override;
  size_t output_width() const override { return num_output_; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  /// Runs the four phases to completion and returns the result rows.
  /// Exposed for the stream implementation and for operator tests.
  StatusOr<std::vector<storage::Row>> Compute() const;

 private:
  BoundAggregation agg_;
  bool has_having_;
  std::string having_text_;
  size_t num_output_;
  ThreadPool* pool_;
  size_t batch_capacity_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_HASH_AGGREGATE_NODE_H_
