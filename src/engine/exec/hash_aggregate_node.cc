#include "engine/exec/hash_aggregate_node.h"

#include <memory>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "engine/exec/aggregate_state.h"
#include "engine/exec/gather_node.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;
using storage::Row;

/// ROW phase over one child stream: drains it batch-by-batch into
/// `groups`. GROUP BY keys are evaluated column-at-a-time per batch;
/// aggregate arguments stay row-at-a-time. Wide statistics queries
/// carry hundreds of argument expressions over multi-KB rows, so a
/// column-major pass per argument would re-walk the whole batch once
/// per expression with a row-sized stride — evaluating every argument
/// while its row is cache-hot is measurably faster.
Status AccumulateStream(const PlanNode& child, size_t stream,
                        const BoundAggregation& agg, size_t batch_capacity,
                        const QueryContext* query_ctx, GroupMap* groups) {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr source, child.OpenStream(stream));
  const std::vector<AggregateSpec>& specs = agg.specs;
  const size_t num_keys = agg.key_exprs.size();
  MemoryTracker* memory =
      query_ctx != nullptr ? query_ctx->memory() : nullptr;

  RowBatch batch(batch_capacity);
  std::vector<std::vector<Datum>> key_cols(num_keys);
  Row key(num_keys);
  std::vector<Datum> scratch;

  for (;;) {
    if (query_ctx != nullptr) NLQ_RETURN_IF_ERROR(query_ctx->CheckAlive());
    NLQ_ASSIGN_OR_RETURN(const bool more, source->Next(&batch));
    if (!more) break;
    const size_t n = batch.size();
    Status error;
    for (size_t k = 0; k < num_keys; ++k) {
      key_cols[k].resize(n);
      agg.key_exprs[k]->EvalBatch(batch.rows(), n, &error,
                                  key_cols[k].data());
    }
    NLQ_RETURN_IF_ERROR(error);

    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < num_keys; ++k) key[k] = key_cols[k][r];
      auto it = groups->find(key);
      if (it == groups->end()) {
        NLQ_ASSIGN_OR_RETURN(GroupState fresh,
                             InitGroupState(specs, key, memory));
        it = groups->emplace(key, std::move(fresh)).first;
      }
      GroupState& state = it->second;
      EvalContext ctx;
      ctx.input = &batch.row(r);
      ctx.error = &error;
      for (size_t i = 0; i < specs.size(); ++i) {
        const AggregateSpec& spec = specs[i];
        if (spec.kind == AggregateSpec::Kind::kCountStar) {
          ++state.builtin[i].count;
          continue;
        }
        scratch.resize(spec.args.size());
        for (size_t a = 0; a < spec.args.size(); ++a) {
          scratch[a] = spec.args[a]->Eval(ctx);
        }
        NLQ_RETURN_IF_ERROR(error);
        if (spec.kind == AggregateSpec::Kind::kUdf) {
          NLQ_FAILPOINT("udf_accumulate");
          NLQ_RETURN_IF_ERROR(
              spec.udaf->Accumulate(state.udf_states[i], scratch));
          continue;
        }
        const Datum& v = scratch[0];
        if (v.is_null()) continue;  // SQL aggregates skip NULLs
        BuiltinAggState& b = state.builtin[i];
        const double x = v.AsDouble();
        switch (spec.kind) {
          case AggregateSpec::Kind::kSum:
          case AggregateSpec::Kind::kAvg:
            b.sum += x;
            ++b.count;
            break;
          case AggregateSpec::Kind::kCount:
            ++b.count;
            break;
          case AggregateSpec::Kind::kMin:
            if (!b.seen || x < b.min) b.min = x;
            break;
          case AggregateSpec::Kind::kMax:
            if (!b.seen || x > b.max) b.max = x;
            break;
          default:
            break;
        }
        b.seen = true;
      }
    }
  }
  return Status::OK();
}

class AggregateStream : public ExecStream {
 public:
  explicit AggregateStream(const HashAggregateNode* node) : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const HashAggregateNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

HashAggregateNode::HashAggregateNode(PlanNodePtr child, BoundAggregation agg,
                                     bool has_having, std::string having_text,
                                     size_t num_output, ThreadPool* pool,
                                     size_t batch_capacity,
                                     const QueryContext* ctx)
    : PlanNode(std::move(child)),
      agg_(std::move(agg)),
      has_having_(has_having),
      having_text_(std::move(having_text)),
      num_output_(num_output),
      pool_(pool),
      batch_capacity_(batch_capacity),
      ctx_(ctx) {}

std::string HashAggregateNode::annotation() const {
  std::string out =
      StringPrintf("%zu group key(s), %zu aggregate(s)",
                   agg_.key_exprs.size(), agg_.specs.size());
  size_t udfs = 0;
  for (const auto& spec : agg_.specs) {
    if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
  }
  if (udfs > 0) out += StringPrintf(", %zu aggregate UDF call(s)", udfs);
  if (has_having_) out += ", having: " + having_text_;
  out += StringPrintf("; merge: %zu partial state(s) per group, %zu worker(s)",
                      child_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
  return out;
}

StatusOr<ExecStreamPtr> HashAggregateNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new AggregateStream(this));
}

StatusOr<std::vector<Row>> HashAggregateNode::Compute() const {
  // ROW phase: one hash table per child stream, drained in parallel.
  // On failure `partials` is destroyed whole — every partial group
  // state (and its UDF heap segments) is torn down with it.
  const size_t streams = child_->num_streams();
  std::vector<GroupMap> partials(streams);
  auto drain_one = [&](size_t s) -> Status {
    return AccumulateStream(*child_, s, agg_, batch_capacity_, ctx_,
                            &partials[s]);
  };
  if (streams == 1 || pool_ == nullptr) {
    for (size_t s = 0; s < streams; ++s) NLQ_RETURN_IF_ERROR(drain_one(s));
  } else {
    NLQ_RETURN_IF_ERROR(pool_->ParallelFor(streams, drain_one, ctx_));
  }

  return MergeAndFinalize(agg_, has_having_, num_output_, &partials,
                          ctx_ != nullptr ? ctx_->memory() : nullptr);
}

}  // namespace nlq::engine::exec
