#include "engine/exec/hash_aggregate_node.h"

#include <memory>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "engine/exec/gather_node.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::Row;

// ---------------------------------------------------------------------------
// Aggregation state (INIT / ROW / MERGE / FINALIZE protocol)
// ---------------------------------------------------------------------------

struct BuiltinAggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool seen = false;
};

struct GroupState {
  Row keys;
  std::vector<BuiltinAggState> builtin;  // parallel to specs
  std::vector<std::unique_ptr<udf::HeapSegment>> heaps;
  std::vector<void*> udf_states;  // parallel to specs, null for builtins
};

struct RowKeyHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Datum& d : row) {
      h ^= d.KeyHash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].KeyEquals(b[i])) return false;
    }
    return true;
  }
};

using GroupMap = std::unordered_map<Row, GroupState, RowKeyHash, RowKeyEq>;

StatusOr<GroupState> InitGroupState(const std::vector<AggregateSpec>& specs,
                                    Row keys, MemoryTracker* memory) {
  if (memory != nullptr) {
    // Hash-table entry overhead: the group's key row plus the three
    // parallel state vectors (heap segment charges ride on the
    // segments themselves, below).
    size_t bytes = sizeof(GroupState) + ApproxRowBytes(keys) +
                   specs.size() * (sizeof(BuiltinAggState) +
                                   sizeof(std::unique_ptr<udf::HeapSegment>) +
                                   sizeof(void*));
    NLQ_RETURN_IF_ERROR(memory->Charge(bytes, "hash-aggregate group"));
  }
  GroupState state;
  state.keys = std::move(keys);
  state.builtin.resize(specs.size());
  state.heaps.resize(specs.size());
  state.udf_states.resize(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    NLQ_ASSIGN_OR_RETURN(state.heaps[i], udf::HeapSegment::Create(memory));
    NLQ_ASSIGN_OR_RETURN(void* udf_state,
                         specs[i].udaf->Init(state.heaps[i].get()));
    state.udf_states[i] = udf_state;
  }
  return state;
}

Status MergeGroup(const std::vector<AggregateSpec>& specs, GroupState* dst,
                  GroupState* src) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == AggregateSpec::Kind::kUdf) {
      NLQ_FAILPOINT("udf_merge");
      NLQ_RETURN_IF_ERROR(
          specs[i].udaf->Merge(dst->udf_states[i], src->udf_states[i]));
      continue;
    }
    BuiltinAggState& d = dst->builtin[i];
    const BuiltinAggState& s = src->builtin[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.seen) {
      if (!d.seen || s.min < d.min) d.min = s.min;
      if (!d.seen || s.max > d.max) d.max = s.max;
      d.seen = true;
    }
  }
  return Status::OK();
}

StatusOr<Row> FinalizeGroup(const std::vector<AggregateSpec>& specs,
                            const GroupState& state) {
  Row out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggregateSpec& spec = specs[i];
    const BuiltinAggState& b = state.builtin[i];
    switch (spec.kind) {
      case AggregateSpec::Kind::kCountStar:
      case AggregateSpec::Kind::kCount:
        out[i] = Datum::Int64(b.count);
        break;
      case AggregateSpec::Kind::kSum:
        out[i] = b.seen ? Datum::Double(b.sum) : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kAvg:
        out[i] = b.count > 0
                     ? Datum::Double(b.sum / static_cast<double>(b.count))
                     : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        if (!b.seen) {
          out[i] = Datum::Null(spec.result_type);
          break;
        }
        const double v =
            spec.kind == AggregateSpec::Kind::kMin ? b.min : b.max;
        out[i] = spec.result_type == DataType::kInt64
                     ? Datum::Int64(static_cast<int64_t>(v))
                     : Datum::Double(v);
        break;
      }
      case AggregateSpec::Kind::kUdf: {
        NLQ_ASSIGN_OR_RETURN(Datum v, spec.udaf->Finalize(state.udf_states[i]));
        out[i] = std::move(v);
        break;
      }
    }
  }
  return out;
}

/// ROW phase over one child stream: drains it batch-by-batch into
/// `groups`. GROUP BY keys are evaluated column-at-a-time per batch;
/// aggregate arguments stay row-at-a-time. Wide statistics queries
/// carry hundreds of argument expressions over multi-KB rows, so a
/// column-major pass per argument would re-walk the whole batch once
/// per expression with a row-sized stride — evaluating every argument
/// while its row is cache-hot is measurably faster.
Status AccumulateStream(const PlanNode& child, size_t stream,
                        const BoundAggregation& agg, size_t batch_capacity,
                        const QueryContext* query_ctx, GroupMap* groups) {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr source, child.OpenStream(stream));
  const std::vector<AggregateSpec>& specs = agg.specs;
  const size_t num_keys = agg.key_exprs.size();
  MemoryTracker* memory =
      query_ctx != nullptr ? query_ctx->memory() : nullptr;

  RowBatch batch(batch_capacity);
  std::vector<std::vector<Datum>> key_cols(num_keys);
  Row key(num_keys);
  std::vector<Datum> scratch;

  for (;;) {
    if (query_ctx != nullptr) NLQ_RETURN_IF_ERROR(query_ctx->CheckAlive());
    NLQ_ASSIGN_OR_RETURN(const bool more, source->Next(&batch));
    if (!more) break;
    const size_t n = batch.size();
    Status error;
    for (size_t k = 0; k < num_keys; ++k) {
      key_cols[k].resize(n);
      agg.key_exprs[k]->EvalBatch(batch.rows(), n, &error,
                                  key_cols[k].data());
    }
    NLQ_RETURN_IF_ERROR(error);

    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < num_keys; ++k) key[k] = key_cols[k][r];
      auto it = groups->find(key);
      if (it == groups->end()) {
        NLQ_ASSIGN_OR_RETURN(GroupState fresh,
                             InitGroupState(specs, key, memory));
        it = groups->emplace(key, std::move(fresh)).first;
      }
      GroupState& state = it->second;
      EvalContext ctx;
      ctx.input = &batch.row(r);
      ctx.error = &error;
      for (size_t i = 0; i < specs.size(); ++i) {
        const AggregateSpec& spec = specs[i];
        if (spec.kind == AggregateSpec::Kind::kCountStar) {
          ++state.builtin[i].count;
          continue;
        }
        scratch.resize(spec.args.size());
        for (size_t a = 0; a < spec.args.size(); ++a) {
          scratch[a] = spec.args[a]->Eval(ctx);
        }
        NLQ_RETURN_IF_ERROR(error);
        if (spec.kind == AggregateSpec::Kind::kUdf) {
          NLQ_FAILPOINT("udf_accumulate");
          NLQ_RETURN_IF_ERROR(
              spec.udaf->Accumulate(state.udf_states[i], scratch));
          continue;
        }
        const Datum& v = scratch[0];
        if (v.is_null()) continue;  // SQL aggregates skip NULLs
        BuiltinAggState& b = state.builtin[i];
        const double x = v.AsDouble();
        switch (spec.kind) {
          case AggregateSpec::Kind::kSum:
          case AggregateSpec::Kind::kAvg:
            b.sum += x;
            ++b.count;
            break;
          case AggregateSpec::Kind::kCount:
            ++b.count;
            break;
          case AggregateSpec::Kind::kMin:
            if (!b.seen || x < b.min) b.min = x;
            break;
          case AggregateSpec::Kind::kMax:
            if (!b.seen || x > b.max) b.max = x;
            break;
          default:
            break;
        }
        b.seen = true;
      }
    }
  }
  return Status::OK();
}

class AggregateStream : public ExecStream {
 public:
  explicit AggregateStream(const HashAggregateNode* node) : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const HashAggregateNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

HashAggregateNode::HashAggregateNode(PlanNodePtr child, BoundAggregation agg,
                                     bool has_having, std::string having_text,
                                     size_t num_output, ThreadPool* pool,
                                     size_t batch_capacity,
                                     const QueryContext* ctx)
    : PlanNode(std::move(child)),
      agg_(std::move(agg)),
      has_having_(has_having),
      having_text_(std::move(having_text)),
      num_output_(num_output),
      pool_(pool),
      batch_capacity_(batch_capacity),
      ctx_(ctx) {}

std::string HashAggregateNode::annotation() const {
  std::string out =
      StringPrintf("%zu group key(s), %zu aggregate(s)",
                   agg_.key_exprs.size(), agg_.specs.size());
  size_t udfs = 0;
  for (const auto& spec : agg_.specs) {
    if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
  }
  if (udfs > 0) out += StringPrintf(", %zu aggregate UDF call(s)", udfs);
  if (has_having_) out += ", having: " + having_text_;
  out += StringPrintf("; merge: %zu partial state(s) per group, %zu worker(s)",
                      child_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
  return out;
}

StatusOr<ExecStreamPtr> HashAggregateNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new AggregateStream(this));
}

StatusOr<std::vector<Row>> HashAggregateNode::Compute() const {
  // ROW phase: one hash table per child stream, drained in parallel.
  // On failure `partials` is destroyed whole — every partial group
  // state (and its UDF heap segments) is torn down with it.
  const size_t streams = child_->num_streams();
  std::vector<GroupMap> partials(streams);
  auto drain_one = [&](size_t s) -> Status {
    return AccumulateStream(*child_, s, agg_, batch_capacity_, ctx_,
                            &partials[s]);
  };
  if (streams == 1 || pool_ == nullptr) {
    for (size_t s = 0; s < streams; ++s) NLQ_RETURN_IF_ERROR(drain_one(s));
  } else {
    NLQ_RETURN_IF_ERROR(pool_->ParallelFor(streams, drain_one, ctx_));
  }

  // MERGE phase: fold partial states into stream 0's table.
  GroupMap& global = partials[0];
  for (size_t p = 1; p < partials.size(); ++p) {
    for (auto& [key, state] : partials[p]) {
      auto it = global.find(key);
      if (it == global.end()) {
        global.emplace(key, std::move(state));
      } else {
        NLQ_RETURN_IF_ERROR(MergeGroup(agg_.specs, &it->second, &state));
      }
    }
    partials[p].clear();
  }

  // Global aggregate over empty input still yields one row.
  if (global.empty() && agg_.key_exprs.empty()) {
    NLQ_ASSIGN_OR_RETURN(
        GroupState fresh,
        InitGroupState(agg_.specs, Row{},
                       ctx_ != nullptr ? ctx_->memory() : nullptr));
    global.emplace(Row{}, std::move(fresh));
  }

  // FINALIZE phase: finalize aggregates, filter by HAVING, project.
  std::vector<Row> rows;
  rows.reserve(global.size());
  Status error;
  for (const auto& [key, state] : global) {
    NLQ_ASSIGN_OR_RETURN(Row agg_values, FinalizeGroup(agg_.specs, state));
    EvalContext ctx;
    ctx.keys = &state.keys;
    ctx.aggs = &agg_values;
    ctx.error = &error;
    if (has_having_) {
      const Datum keep = agg_.projections[num_output_]->Eval(ctx);
      NLQ_RETURN_IF_ERROR(error);
      if (keep.is_null() || keep.AsDouble() == 0.0) continue;
    }
    Row out(num_output_);
    for (size_t c = 0; c < num_output_; ++c) {
      out[c] = agg_.projections[c]->Eval(ctx);
    }
    NLQ_RETURN_IF_ERROR(error);
    rows.push_back(std::move(out));
  }
  return rows;
}

}  // namespace nlq::engine::exec
