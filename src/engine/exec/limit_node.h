#ifndef NLQ_ENGINE_EXEC_LIMIT_NODE_H_
#define NLQ_ENGINE_EXEC_LIMIT_NODE_H_

#include <string>

#include "engine/exec/plan.h"

namespace nlq::engine::exec {

/// LIMIT: forwards batches until `limit` rows have been produced,
/// truncating the final batch and short-circuiting further pulls from
/// the child.
class LimitNode : public PlanNode {
 public:
  LimitNode(PlanNodePtr child, int64_t limit);

  const char* name() const override { return "Limit"; }
  std::string annotation() const override;
  size_t output_width() const override { return child_->output_width(); }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  int64_t limit_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_LIMIT_NODE_H_
