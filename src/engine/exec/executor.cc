#include "engine/exec/executor.h"

#include <utility>
#include <vector>

#include "common/metrics.h"
#include "engine/exec/gather_node.h"
#include "storage/row_batch.h"

namespace nlq::engine::exec {

StatusOr<ResultSet> ExecutePlan(const PhysicalPlan& plan,
                                const QueryContext* ctx) {
  if (plan.root->num_streams() != 1) {
    return Status::Internal("plan root must produce a single stream");
  }
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr stream, plan.root->OpenStream(0));
  MemoryTracker* memory = ctx != nullptr ? ctx->memory() : nullptr;
  std::vector<storage::Row> rows;
  RowBatch batch;
  for (;;) {
    if (ctx != nullptr) NLQ_RETURN_IF_ERROR(ctx->CheckAlive());
    NLQ_ASSIGN_OR_RETURN(const bool more, stream->Next(&batch));
    if (!more) break;
    if (ctx != nullptr && ctx->stats() != nullptr) {
      ctx->stats()->rows_returned.fetch_add(batch.size(),
                                            std::memory_order_relaxed);
    }
    if (memory != nullptr) {
      size_t bytes = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        bytes += ApproxRowBytes(batch.row(i));
      }
      NLQ_RETURN_IF_ERROR(memory->Charge(bytes, "result rows"));
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(std::move(batch.row(i)));
    }
  }
  return ResultSet(plan.output_schema, std::move(rows));
}

}  // namespace nlq::engine::exec
