#include "engine/exec/executor.h"

#include <utility>
#include <vector>

#include "storage/row_batch.h"

namespace nlq::engine::exec {

StatusOr<ResultSet> ExecutePlan(const PhysicalPlan& plan) {
  if (plan.root->num_streams() != 1) {
    return Status::Internal("plan root must produce a single stream");
  }
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr stream, plan.root->OpenStream(0));
  std::vector<storage::Row> rows;
  RowBatch batch;
  for (;;) {
    NLQ_ASSIGN_OR_RETURN(const bool more, stream->Next(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(std::move(batch.row(i)));
    }
  }
  return ResultSet(plan.output_schema, std::move(rows));
}

}  // namespace nlq::engine::exec
