#include "engine/exec/columnar_scan_node.h"

#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {

using storage::ColumnVector;
using storage::DataType;
using storage::NullBitGet;
using storage::NullBitmapWords;
using storage::NullBitSet;

void ApplyColumnFilter(const ColumnFilter& f, const ColumnSpanBatch& in,
                       uint8_t* keep) {
  const double* dv = in.doubles[f.col];
  const int64_t* iv = in.ints[f.col];
  const uint64_t* nb = in.null_bits[f.col];
  const double lit = f.value;
  for (size_t r = 0; r < in.rows; ++r) {
    if (!keep[r]) continue;
    if (nb != nullptr && NullBitGet(nb, r)) {
      keep[r] = 0;
      continue;
    }
    const double v = dv != nullptr ? dv[r] : static_cast<double>(iv[r]);
    bool pass = false;
    switch (f.op) {
      case BinaryOp::kEq: pass = v == lit; break;
      case BinaryOp::kNe: pass = v != lit; break;
      case BinaryOp::kLt: pass = v < lit; break;
      case BinaryOp::kLe: pass = v <= lit; break;
      case BinaryOp::kGt: pass = v > lit; break;
      case BinaryOp::kGe: pass = v >= lit; break;
      default: break;
    }
    if (!pass) keep[r] = 0;
  }
}

namespace {

/// Stream over one morsel — rows [begin, end) of one partition. In
/// streaming mode batches are decoded page-by-page through a
/// range-restricted ColumnBatchScanner into stream-owned buffers; in
/// cache mode the morsel is served as one batch of span slices
/// aliasing the table's decoded-column cache. Filtered batches are
/// compacted (order-preserving) into stream-owned scratch columns.
class ColumnarScanStream : public ColumnStream {
 public:
  ColumnarScanStream(const storage::Table* partition, uint64_t begin_row,
                     uint64_t end_row, const std::vector<size_t>& slots,
                     const std::vector<ColumnFilter>& filters, bool use_cache,
                     size_t batch_capacity, const QueryContext* ctx)
      : partition_(partition),
        begin_row_(begin_row),
        end_row_(end_row),
        slots_(slots),
        filters_(filters),
        use_cache_(use_cache),
        ctx_(ctx),
        scanner_(use_cache ? nullptr
                           : std::make_unique<storage::ColumnBatchScanner>(
                                 partition->ScanColumnBatchRange(
                                     slots, begin_row, end_row,
                                     batch_capacity))),
        scratch_(slots.size()) {}

  StatusOr<bool> Next(ColumnSpanBatch* out) override {
    if (ctx_ != nullptr) NLQ_RETURN_IF_ERROR(ctx_->CheckAlive());
    NLQ_FAILPOINT("partition_scan");
    return use_cache_ ? NextCached(out) : NextStreaming(out);
  }

 private:
  StatusOr<bool> NextStreaming(ColumnSpanBatch* out) {
    for (;;) {
      const bool more = scanner_->Next(&batch_);
      if (ctx_ != nullptr && ctx_->stats() != nullptr) {
        const size_t decoded = scanner_->pages_decoded();
        ctx_->stats()->pages_decoded.fetch_add(decoded - pages_reported_,
                                               std::memory_order_relaxed);
        pages_reported_ = decoded;
      }
      if (!scanner_->status().ok()) return scanner_->status();
      if (!more) return false;
      out->rows = batch_.size();
      Point(out, [this](size_t c) -> const ColumnVector& {
        return batch_.column(c);
      });
      if (Filter(out)) return true;
    }
  }

  StatusOr<bool> NextCached(ColumnSpanBatch* out) {
    if (served_) return false;
    served_ = true;
    if (end_row_ <= begin_row_) return false;
    NLQ_RETURN_IF_ERROR(partition_->EnsureDecodedColumns(slots_));
    const size_t begin = static_cast<size_t>(begin_row_);
    const size_t rows = static_cast<size_t>(end_row_ - begin_row_);
    out->rows = rows;
    const size_t ncols = slots_.size();
    out->doubles.assign(ncols, nullptr);
    out->ints.assign(ncols, nullptr);
    out->null_bits.assign(ncols, nullptr);
    if (slice_bits_.size() < ncols) slice_bits_.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnVector& col = *partition_->decoded_column(slots_[c]);
      if (col.type == DataType::kDouble) {
        out->doubles[c] = col.double_data() + begin;
      } else {
        out->ints[c] = col.int_data() + begin;
      }
      if (!col.has_nulls()) continue;
      if (begin % 64 == 0) {
        // Word-aligned slice: alias the cached bitmap directly (bits
        // past `rows` in the last word are never read).
        out->null_bits[c] = col.null_bits.data() + begin / 64;
      } else {
        // Misaligned morsel boundary: repack the slice's bits to start
        // at bit 0 of stream-owned scratch words.
        std::vector<uint64_t>& dst = slice_bits_[c];
        dst.assign(NullBitmapWords(rows), 0);
        for (size_t r = 0; r < rows; ++r) {
          if (NullBitGet(col.null_bits.data(), begin + r)) {
            NullBitSet(dst.data(), r);
          }
        }
        out->null_bits[c] = dst.data();
      }
    }
    return Filter(out);
  }

  /// Points `out`'s spans at the ColumnVectors returned by `source`.
  template <typename Source>
  void Point(ColumnSpanBatch* out, Source source) {
    const size_t ncols = slots_.size();
    out->doubles.assign(ncols, nullptr);
    out->ints.assign(ncols, nullptr);
    out->null_bits.assign(ncols, nullptr);
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnVector& col = source(c);
      if (col.type == DataType::kDouble) {
        out->doubles[c] = col.double_data();
      } else {
        out->ints[c] = col.int_data();
      }
      if (col.has_nulls()) out->null_bits[c] = col.null_bits.data();
    }
  }

  /// Applies the pushed-down comparisons to `out` in place, compacting
  /// survivors into scratch columns when any row is dropped. Returns
  /// false when no row survives (the caller skips the batch).
  bool Filter(ColumnSpanBatch* out) {
    if (filters_.empty()) return true;
    keep_.assign(out->rows, 1);
    for (const ColumnFilter& f : filters_) {
      ApplyColumnFilter(f, *out, keep_.data());
    }
    return CompactColumnSpans(out, keep_.data(), &scratch_) > 0;
  }

  const storage::Table* partition_;
  uint64_t begin_row_;
  uint64_t end_row_;
  const std::vector<size_t>& slots_;
  const std::vector<ColumnFilter>& filters_;
  bool use_cache_;
  const QueryContext* ctx_;
  bool served_ = false;
  size_t pages_reported_ = 0;
  std::unique_ptr<storage::ColumnBatchScanner> scanner_;
  storage::ColumnBatch batch_;
  std::vector<uint8_t> keep_;
  std::vector<ScratchColumn> scratch_;
  std::vector<std::vector<uint64_t>> slice_bits_;  // per column, cache mode
};

}  // namespace

ColumnarScanNode::ColumnarScanNode(const storage::PartitionedTable* table,
                                   std::string table_name,
                                   std::vector<size_t> slots,
                                   std::vector<ColumnFilter> filters,
                                   bool use_cache, size_t batch_capacity,
                                   uint64_t morsel_rows,
                                   const QueryContext* ctx)
    : PlanNode(nullptr),
      table_(table),
      table_name_(std::move(table_name)),
      slots_(std::move(slots)),
      filters_(std::move(filters)),
      use_cache_(use_cache),
      batch_capacity_(batch_capacity),
      morsel_rows_(morsel_rows),
      ctx_(ctx),
      grid_(BuildMorselGrid(*table, morsel_rows)) {
  for (size_t p = 0; p < table_->num_partitions(); ++p) {
    if (table_->partition(p).is_spilled()) {
      spilled_ = true;
      break;
    }
  }
}

std::string ColumnarScanNode::annotation() const {
  std::string out = StringPrintf(
      "%s: %llu rows, %zu partitions, %zu of %zu column(s), batch %zu, "
      "morsel %llu (%zu morsel(s)), cache %s",
      table_name_.c_str(), static_cast<unsigned long long>(table_->num_rows()),
      table_->num_partitions(), slots_.size(),
      table_->schema().num_columns(), batch_capacity_,
      static_cast<unsigned long long>(morsel_rows_), grid_.size(),
      spilled_ ? "spilled" : (use_cache_ ? "on" : "off"));
  if (!filters_.empty()) {
    out += ", filter: ";
    for (size_t i = 0; i < filters_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += filters_[i].text;
    }
  }
  return out;
}

StatusOr<ExecStreamPtr> ColumnarScanNode::OpenStreamImpl(size_t) const {
  return Status::Internal(
      "ColumnarScan produces column spans; it must be driven by "
      "ColumnarAggregate");
}

StatusOr<ColumnStreamPtr> ColumnarScanNode::OpenColumnStreamImpl(
    size_t s) const {
  const Morsel& m = grid_[s];
  return ColumnStreamPtr(new ColumnarScanStream(
      &table_->partition(m.partition), m.begin, m.end, slots_, filters_,
      use_cache_ && !cache_suppressed_ && !spilled_, batch_capacity_, ctx_));
}

Status ColumnarScanNode::WarmCache(ThreadPool* pool) const {
  if (!use_cache_ || cache_suppressed_) return Status::OK();
  QueryStats* qstats = ctx_ != nullptr ? ctx_->stats() : nullptr;

  // A spilled table streams through the buffer pool by design; letting
  // the cache re-materialize every decoded column in RAM would undo
  // the spill. Suppress the cache (one fallback event) and say why.
  if (spilled_) {
    cache_suppressed_ = true;
    if (qstats != nullptr) {
      qstats->column_cache_fallbacks.fetch_add(1, std::memory_order_relaxed);
      qstats->AddCacheNote(StringPrintf(
          "decoded-column cache bypassed for table %s: table is spilled, "
          "streaming through the buffer pool instead",
          table_name_.c_str()));
    }
    return Status::OK();
  }

  // Budget check: estimate what filling the cache would ADD (columns a
  // previous statement already decoded are free) and skip the cache —
  // not the query — when it does not fit.
  MemoryTracker* memory = ctx_ != nullptr ? ctx_->memory() : nullptr;
  if (memory != nullptr) {
    uint64_t fill_bytes = 0;
    for (size_t p = 0; p < table_->num_partitions(); ++p) {
      const storage::Table& part = table_->partition(p);
      const uint64_t rows = part.num_rows();
      if (rows == 0) continue;
      for (size_t slot : slots_) {
        if (part.decoded_column(slot) != nullptr) continue;
        // 8 bytes per value plus the worst-case null bitmap word span.
        fill_bytes += rows * sizeof(double) +
                      storage::NullBitmapWords(rows) * sizeof(uint64_t);
      }
    }
    if (fill_bytes > 0 && !memory->TryCharge(fill_bytes)) {
      cache_suppressed_ = true;
      if (qstats != nullptr) {
        qstats->column_cache_fallbacks.fetch_add(1,
                                                 std::memory_order_relaxed);
        // Name the consumer that exhausted the budget and show the
        // arithmetic: what the fill would have added on top of what the
        // query had already charged against its limit.
        qstats->AddCacheNote(StringPrintf(
            "decoded-column cache for table %s needs %llu more bytes; "
            "query memory budget %llu has %llu in use",
            table_name_.c_str(),
            static_cast<unsigned long long>(fill_bytes),
            static_cast<unsigned long long>(memory->limit()),
            static_cast<unsigned long long>(memory->used())));
      }
      return Status::OK();
    }
  }

  if (qstats != nullptr) {
    // Cache accounting is per (partition, slot): a slot some earlier
    // statement already decoded is a hit, one this warm-up must decode
    // is a miss. Misses cost one full decode pass over the partition's
    // pages (EnsureDecodedColumns fills all missing slots in one pass).
    // Counted only once the budget check passed — a suppressed cache
    // decodes nothing here and streams instead (one fallback event).
    for (size_t p = 0; p < table_->num_partitions(); ++p) {
      const storage::Table& part = table_->partition(p);
      if (part.num_rows() == 0) continue;
      bool any_missing = false;
      for (const size_t slot : slots_) {
        if (part.decoded_column(slot) != nullptr) {
          qstats->column_cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          qstats->column_cache_misses.fetch_add(1, std::memory_order_relaxed);
          any_missing = true;
        }
      }
      if (any_missing) {
        qstats->pages_decoded.fetch_add(part.num_pages(),
                                        std::memory_order_relaxed);
      }
    }
  }

  const size_t parts = table_->num_partitions();
  auto warm_one = [&](size_t p) -> Status {
    if (table_->partition(p).num_rows() == 0) return Status::OK();
    return table_->partition(p).EnsureDecodedColumns(slots_);
  };
  if (parts == 1 || pool == nullptr) {
    for (size_t p = 0; p < parts; ++p) NLQ_RETURN_IF_ERROR(warm_one(p));
    return Status::OK();
  }
  return pool->ParallelFor(parts, warm_one, ctx_);
}

}  // namespace nlq::engine::exec
