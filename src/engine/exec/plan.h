#ifndef NLQ_ENGINE_EXEC_PLAN_H_
#define NLQ_ENGINE_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/exec/column_stream.h"
#include "storage/row_batch.h"

namespace nlq::engine::exec {

using storage::RowBatch;

/// A pull cursor over one parallel stream of a plan node. Streams of
/// the same node are independent (one per driver partition below the
/// pipeline breaker) and may be driven from different worker threads.
class ExecStream {
 public:
  virtual ~ExecStream() = default;

  /// Clears `out` and fills it with the next batch of rows. Returns
  /// true while rows were produced, false once the stream is
  /// exhausted; errors surface as a non-OK status.
  virtual StatusOr<bool> Next(RowBatch* out) = 0;
};

using ExecStreamPtr = std::unique_ptr<ExecStream>;

/// A node of the physical plan tree. Nodes are immutable after
/// planning and hold no execution state — all mutable state lives in
/// the ExecStream cursors they open, so one plan can be executed by
/// several worker threads (one stream each) at once.
///
/// The tree is a chain: every node has at most one input child.
/// Operators with a second, bounded input (the materialized small
/// side of CrossJoinNode) own it as node data rather than as a child
/// subtree, mirroring the engine's driver-table/small-table split.
class PlanNode {
 public:
  explicit PlanNode(std::unique_ptr<PlanNode> child)
      : child_(std::move(child)) {}
  virtual ~PlanNode() = default;

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  /// Operator name as printed by EXPLAIN ("ParallelScan", "Filter"...).
  virtual const char* name() const = 0;

  /// One-line EXPLAIN annotation, printed as `Name (annotation)`.
  virtual std::string annotation() const = 0;

  /// Number of slots in the rows this node produces.
  virtual size_t output_width() const = 0;

  /// Number of independent parallel streams this node exposes.
  /// Streaming operators inherit their child's fan-out; pipeline
  /// breakers (gather/aggregate/sort) expose exactly one.
  virtual size_t num_streams() const {
    return child_ == nullptr ? 1 : child_->num_streams();
  }

  /// Opens the pull cursor for stream `s` in [0, num_streams()).
  /// When an OperatorStats sink is attached (AttachQueryStats), the
  /// returned cursor is wrapped so every batch it yields is counted —
  /// the wrapping happens here, in the non-virtual shell, so no node
  /// implementation can forget to instrument itself.
  StatusOr<ExecStreamPtr> OpenStream(size_t s) const;

  /// Opens the span-batch cursor for stream `s` — the columnar
  /// pipeline's counterpart of OpenStream, implemented only by nodes
  /// that produce column spans (ColumnarScan, VectorFilter); the
  /// default reports the node as row-only. Instrumented exactly like
  /// OpenStream: rows_out counts span-batch rows.
  StatusOr<ColumnStreamPtr> OpenColumnStream(size_t s) const;

  const PlanNode* child() const { return child_.get(); }

  /// The per-operator stats sink, or nullptr when the query runs
  /// without stats collection.
  OperatorStats* stats() const { return stats_; }

 protected:
  /// The actual cursor factory each operator implements.
  virtual StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const = 0;

  /// Span-cursor factory for columnar-pipeline nodes.
  virtual StatusOr<ColumnStreamPtr> OpenColumnStreamImpl(size_t s) const;

  std::unique_ptr<PlanNode> child_;

 private:
  friend void AttachQueryStats(PlanNode* root, QueryStats* stats);

  OperatorStats* stats_ = nullptr;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Registers every node of the chain with `stats` (root first, so the
/// snapshot's operator order matches EXPLAIN's line order) and points
/// each node at its OperatorStats sink. Pass stats == nullptr to
/// detach. Must be called before any stream is opened.
void AttachQueryStats(PlanNode* root, QueryStats* stats);

/// Renders the plan tree top-down with `└─` connectors:
///   Sort (1 key(s))
///   └─ Gather (4 streams)
///      └─ ParallelScan (X: 50 rows, 4 partitions, batch 1024)
std::string ExplainPlan(const PlanNode& root);

/// Renders the EXPLAIN ANALYZE view of an executed statement: the same
/// tree shape as ExplainPlan, each operator line suffixed with its
/// actuals, then a statement-level totals footer:
///   Sort (1 key(s)) [rows=50 batches=1 time=0.412ms self=0.101ms]
///   └─ ...
///   Totals: rows=50 pages_decoded=4 cache(hits=0 misses=0
///   fallbacks=0) time=1.002ms
/// `time` is cumulative over the operator and everything below it,
/// summed across parallel streams (it can exceed wall clock); `self`
/// subtracts the child's cumulative time, clamped at zero.
std::string RenderAnalyzedPlan(const QueryStatsSnapshot& snapshot);

/// Replaces every `time=<number>ms` / `self=<number>ms` value with
/// `<T>` so EXPLAIN ANALYZE output can be golden-tested byte-for-byte
/// (timings are the only nondeterminism in the rendering).
std::string RedactTimings(std::string_view rendered);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_PLAN_H_
