#include "engine/exec/columnar_aggregate_node.h"

#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "engine/exec/gather_node.h"
#include "storage/column_batch.h"
#include "udf/heap_segment.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::NullBitGet;
using storage::Row;

/// Builtin aggregate state; field-for-field the same struct (and the
/// same update rules) as the row path's, so both paths stay
/// byte-identical — see hash_aggregate_node.cc.
struct BuiltinAggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool seen = false;
};

/// One partition's partial aggregation state (the row path keeps the
/// same triple per hash-table group; here there is exactly one global
/// group).
struct PartialState {
  std::vector<BuiltinAggState> builtin;
  std::vector<std::unique_ptr<udf::HeapSegment>> heaps;
  std::vector<void*> udf_states;  // parallel to specs, null for builtins
};

Status InitPartial(const std::vector<ColumnarAggSpec>& specs,
                   MemoryTracker* memory, PartialState* state) {
  state->builtin.resize(specs.size());
  state->heaps.resize(specs.size());
  state->udf_states.resize(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    NLQ_ASSIGN_OR_RETURN(state->heaps[i], udf::HeapSegment::Create(memory));
    NLQ_ASSIGN_OR_RETURN(void* udf_state,
                         specs[i].udaf->Init(state->heaps[i].get()));
    state->udf_states[i] = udf_state;
  }
  return Status::OK();
}

/// ROW phase of one SQL builtin over one span: NULLs are skipped per
/// column and `seen` is raised per surviving row, matching the row
/// path's per-Datum loop update for update.
void AccumulateBuiltinSpan(AggregateSpec::Kind kind,
                           const ColumnSpanBatch& in, size_t c,
                           BuiltinAggState* b) {
  const double* dv = in.doubles[c];
  const int64_t* iv = in.ints[c];
  const uint64_t* nb = in.null_bits[c];
  for (size_t r = 0; r < in.rows; ++r) {
    if (nb != nullptr && NullBitGet(nb, r)) continue;
    const double x = dv != nullptr ? dv[r] : static_cast<double>(iv[r]);
    switch (kind) {
      case AggregateSpec::Kind::kSum:
      case AggregateSpec::Kind::kAvg:
        b->sum += x;
        ++b->count;
        break;
      case AggregateSpec::Kind::kCount:
        ++b->count;
        break;
      case AggregateSpec::Kind::kMin:
        if (!b->seen || x < b->min) b->min = x;
        break;
      case AggregateSpec::Kind::kMax:
        if (!b->seen || x > b->max) b->max = x;
        break;
      default:
        break;
    }
    b->seen = true;
  }
}

/// Per-drain scratch reused across batches: widened / compacted double
/// spans and the skip mask.
struct SpanScratch {
  std::vector<std::vector<double>> cols;
  std::vector<const double*> spans;
  std::vector<uint8_t> keep;
};

/// ROW phase of one aggregate UDF over one batch: widens BIGINT
/// arguments to double and applies the skip-row NULL policy (a NULL in
/// any argument drops the row from this UDF only) by order-preserving
/// compaction, then hands dense spans to AccumulateSpans. Called even
/// when every row compacts away — the UDF state must still fix its
/// shape, exactly as Accumulate does before its own NULL check.
Status AccumulateUdfSpans(const ColumnarAggSpec& spec,
                          const ColumnSpanBatch& in, void* state,
                          SpanScratch* scratch) {
  const size_t ncols = spec.arg_cols.size();
  if (scratch->cols.size() < ncols) scratch->cols.resize(ncols);
  scratch->spans.resize(ncols);
  bool any_nulls = false;
  for (size_t a = 0; a < ncols; ++a) {
    any_nulls |= in.null_bits[spec.arg_cols[a]] != nullptr;
  }
  size_t out_rows = in.rows;
  if (any_nulls) {
    scratch->keep.assign(in.rows, 1);
    out_rows = 0;
    for (size_t a = 0; a < ncols; ++a) {
      const uint64_t* nb = in.null_bits[spec.arg_cols[a]];
      if (nb == nullptr) continue;
      for (size_t r = 0; r < in.rows; ++r) {
        if (NullBitGet(nb, r)) scratch->keep[r] = 0;
      }
    }
    for (size_t r = 0; r < in.rows; ++r) out_rows += scratch->keep[r];
  }
  NLQ_FAILPOINT("udf_accumulate");
  for (size_t a = 0; a < ncols; ++a) {
    const size_t c = spec.arg_cols[a];
    const double* dv = in.doubles[c];
    const int64_t* iv = in.ints[c];
    if (!any_nulls && dv != nullptr) {
      scratch->spans[a] = dv;  // zero-copy fast path
      continue;
    }
    std::vector<double>& buf = scratch->cols[a];
    buf.resize(out_rows);
    size_t w = 0;
    for (size_t r = 0; r < in.rows; ++r) {
      if (any_nulls && !scratch->keep[r]) continue;
      buf[w++] = dv != nullptr ? dv[r] : static_cast<double>(iv[r]);
    }
    scratch->spans[a] = buf.data();
  }
  return spec.udaf->AccumulateSpans(state, spec.const_args,
                                    scratch->spans.data(), ncols, out_rows);
}

Status MergePartial(const std::vector<ColumnarAggSpec>& specs,
                    PartialState* dst, const PartialState* src) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == AggregateSpec::Kind::kUdf) {
      NLQ_FAILPOINT("udf_merge");
      NLQ_RETURN_IF_ERROR(
          specs[i].udaf->Merge(dst->udf_states[i], src->udf_states[i]));
      continue;
    }
    BuiltinAggState& d = dst->builtin[i];
    const BuiltinAggState& s = src->builtin[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.seen) {
      if (!d.seen || s.min < d.min) d.min = s.min;
      if (!d.seen || s.max > d.max) d.max = s.max;
      d.seen = true;
    }
  }
  return Status::OK();
}

StatusOr<Row> FinalizePartial(const std::vector<ColumnarAggSpec>& specs,
                              const PartialState& state) {
  Row out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const ColumnarAggSpec& spec = specs[i];
    const BuiltinAggState& b = state.builtin[i];
    switch (spec.kind) {
      case AggregateSpec::Kind::kCountStar:
      case AggregateSpec::Kind::kCount:
        out[i] = Datum::Int64(b.count);
        break;
      case AggregateSpec::Kind::kSum:
        out[i] = b.seen ? Datum::Double(b.sum) : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kAvg:
        out[i] = b.count > 0
                     ? Datum::Double(b.sum / static_cast<double>(b.count))
                     : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        if (!b.seen) {
          out[i] = Datum::Null(spec.result_type);
          break;
        }
        const double v =
            spec.kind == AggregateSpec::Kind::kMin ? b.min : b.max;
        out[i] = spec.result_type == DataType::kInt64
                     ? Datum::Int64(static_cast<int64_t>(v))
                     : Datum::Double(v);
        break;
      }
      case AggregateSpec::Kind::kUdf: {
        NLQ_ASSIGN_OR_RETURN(Datum v, spec.udaf->Finalize(state.udf_states[i]));
        out[i] = std::move(v);
        break;
      }
    }
  }
  return out;
}

class ColumnarAggregateStream : public ExecStream {
 public:
  explicit ColumnarAggregateStream(const ColumnarAggregateNode* node)
      : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const ColumnarAggregateNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

ColumnarAggregateNode::ColumnarAggregateNode(
    std::unique_ptr<ColumnarScanNode> child,
    std::vector<ColumnarAggSpec> specs, std::vector<BoundExprPtr> projections,
    size_t num_output, ThreadPool* pool, const QueryContext* ctx)
    : PlanNode(std::move(child)),
      specs_(std::move(specs)),
      projections_(std::move(projections)),
      num_output_(num_output),
      pool_(pool),
      ctx_(ctx) {
  scan_ = static_cast<const ColumnarScanNode*>(child_.get());
}

std::string ColumnarAggregateNode::annotation() const {
  std::string out = StringPrintf("%zu aggregate(s)", specs_.size());
  size_t udfs = 0;
  for (const auto& spec : specs_) {
    if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
  }
  if (udfs > 0) out += StringPrintf(", %zu fused UDF span call(s)", udfs);
  out += StringPrintf("; merge: %zu partial state(s), %zu worker(s)",
                      scan_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
  return out;
}

StatusOr<ExecStreamPtr> ColumnarAggregateNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new ColumnarAggregateStream(this));
}

StatusOr<std::vector<Row>> ColumnarAggregateNode::Compute() const {
  // Fill the decoded-column cache one partition per task BEFORE the
  // morsel drain: concurrent morsels of one partition must only read
  // an already-filled cache.
  NLQ_RETURN_IF_ERROR(scan_->WarmCache(pool_));

  // ROW phase: one partial state per morsel stream, drained by
  // whichever workers claim them. On failure `partials` is destroyed
  // whole, tearing down every partial UDF heap segment.
  const size_t parts = scan_->num_streams();
  std::vector<PartialState> partials(parts);
  MemoryTracker* memory = ctx_ != nullptr ? ctx_->memory() : nullptr;
  auto drain_one = [&](size_t p) -> Status {
    PartialState& state = partials[p];
    NLQ_RETURN_IF_ERROR(InitPartial(specs_, memory, &state));
    NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr source, scan_->OpenColumnStream(p));
    ColumnSpanBatch batch;
    SpanScratch scratch;
    for (;;) {
      NLQ_ASSIGN_OR_RETURN(const bool more, source->Next(&batch));
      if (!more) return Status::OK();
      for (size_t i = 0; i < specs_.size(); ++i) {
        const ColumnarAggSpec& spec = specs_[i];
        if (spec.kind == AggregateSpec::Kind::kCountStar) {
          state.builtin[i].count += static_cast<int64_t>(batch.rows);
        } else if (spec.kind == AggregateSpec::Kind::kUdf) {
          NLQ_RETURN_IF_ERROR(
              AccumulateUdfSpans(spec, batch, state.udf_states[i], &scratch));
        } else {
          AccumulateBuiltinSpan(spec.kind, batch, spec.arg_cols[0],
                                &state.builtin[i]);
        }
      }
    }
  };
  if (parts == 1 || pool_ == nullptr) {
    for (size_t p = 0; p < parts; ++p) NLQ_RETURN_IF_ERROR(drain_one(p));
  } else {
    NLQ_RETURN_IF_ERROR(pool_->ParallelFor(parts, drain_one, ctx_));
  }

  // MERGE phase: fold partial states into morsel 0's, in morsel-index
  // order. The grid — and therefore this fold order — depends only on
  // the partition layout, never on which worker drained which morsel,
  // so results are bit-identical across thread counts and runs (and
  // match the row path, which folds the same grid the same way).
  for (size_t p = 1; p < parts; ++p) {
    NLQ_RETURN_IF_ERROR(MergePartial(specs_, &partials[0], &partials[p]));
  }

  // FINALIZE phase: one global group (partials[0] exists even for an
  // empty table, matching the row path's empty-input global group).
  NLQ_ASSIGN_OR_RETURN(Row agg_values, FinalizePartial(specs_, partials[0]));
  const Row empty_keys;
  Status error;
  EvalContext ctx;
  ctx.keys = &empty_keys;
  ctx.aggs = &agg_values;
  ctx.error = &error;
  Row out(num_output_);
  for (size_t c = 0; c < num_output_; ++c) {
    out[c] = projections_[c]->Eval(ctx);
  }
  NLQ_RETURN_IF_ERROR(error);
  std::vector<Row> rows;
  rows.push_back(std::move(out));
  return rows;
}

}  // namespace nlq::engine::exec
