#include "engine/exec/columnar_aggregate_node.h"

#include <utility>

#include "common/strings.h"
#include "engine/exec/agg_partials.h"
#include "engine/exec/gather_node.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {
namespace {

using storage::Row;

class ColumnarAggregateStream : public ExecStream {
 public:
  explicit ColumnarAggregateStream(const ColumnarAggregateNode* node)
      : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const ColumnarAggregateNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

ColumnarAggregateNode::ColumnarAggregateNode(
    std::unique_ptr<ColumnarScanNode> child,
    std::vector<ColumnarAggSpec> specs, std::vector<BoundExprPtr> projections,
    size_t num_output, ThreadPool* pool, const QueryContext* ctx)
    : PlanNode(std::move(child)),
      specs_(std::move(specs)),
      projections_(std::move(projections)),
      num_output_(num_output),
      pool_(pool),
      ctx_(ctx) {
  scan_ = static_cast<const ColumnarScanNode*>(child_.get());
}

std::string ColumnarAggregateNode::annotation() const {
  std::string out = StringPrintf("%zu aggregate(s)", specs_.size());
  size_t udfs = 0;
  for (const auto& spec : specs_) {
    if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
  }
  if (udfs > 0) out += StringPrintf(", %zu fused UDF span call(s)", udfs);
  out += StringPrintf("; merge: %zu partial state(s), %zu worker(s)",
                      scan_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
  if (!view_note_.empty()) out += ", " + view_note_;
  return out;
}

StatusOr<ExecStreamPtr> ColumnarAggregateNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new ColumnarAggregateStream(this));
}

StatusOr<std::vector<Row>> ColumnarAggregateNode::Compute() const {
  // Fill the decoded-column cache one partition per task BEFORE the
  // morsel drain: concurrent morsels of one partition must only read
  // an already-filled cache.
  NLQ_RETURN_IF_ERROR(scan_->WarmCache(pool_));

  // ROW phase: one partial state per morsel stream, drained by
  // whichever workers claim them. On failure `partials` is destroyed
  // whole, tearing down every partial UDF heap segment.
  const size_t parts = scan_->num_streams();
  std::vector<PartialState> partials(parts);
  MemoryTracker* memory = ctx_ != nullptr ? ctx_->memory() : nullptr;
  auto drain_one = [&](size_t p) -> Status {
    PartialState& state = partials[p];
    NLQ_RETURN_IF_ERROR(InitPartial(specs_, memory, &state));
    NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr source, scan_->OpenColumnStream(p));
    ColumnSpanBatch batch;
    SpanScratch scratch;
    for (;;) {
      NLQ_ASSIGN_OR_RETURN(const bool more, source->Next(&batch));
      if (!more) return Status::OK();
      NLQ_RETURN_IF_ERROR(
          AccumulateSpecsBatch(specs_, batch, &state, &scratch));
    }
  };
  if (parts == 1 || pool_ == nullptr) {
    for (size_t p = 0; p < parts; ++p) NLQ_RETURN_IF_ERROR(drain_one(p));
  } else {
    NLQ_RETURN_IF_ERROR(pool_->ParallelFor(parts, drain_one, ctx_));
  }

  // MERGE phase: fold partial states into morsel 0's, in morsel-index
  // order. The grid — and therefore this fold order — depends only on
  // the partition layout, never on which worker drained which morsel,
  // so results are bit-identical across thread counts and runs (and
  // match the row path, which folds the same grid the same way).
  for (size_t p = 1; p < parts; ++p) {
    NLQ_RETURN_IF_ERROR(MergePartial(specs_, &partials[0], &partials[p]));
  }

  // FINALIZE phase: one global group (partials[0] exists even for an
  // empty table, matching the row path's empty-input global group).
  NLQ_ASSIGN_OR_RETURN(Row agg_values, FinalizePartial(specs_, partials[0]));
  const Row empty_keys;
  Status error;
  EvalContext ctx;
  ctx.keys = &empty_keys;
  ctx.aggs = &agg_values;
  ctx.error = &error;
  Row out(num_output_);
  for (size_t c = 0; c < num_output_; ++c) {
    out[c] = projections_[c]->Eval(ctx);
  }
  NLQ_RETURN_IF_ERROR(error);
  std::vector<Row> rows;
  rows.push_back(std::move(out));
  return rows;
}

}  // namespace nlq::engine::exec
