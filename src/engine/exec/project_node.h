#ifndef NLQ_ENGINE_EXEC_PROJECT_NODE_H_
#define NLQ_ENGINE_EXEC_PROJECT_NODE_H_

#include <string>
#include <vector>

#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// SELECT-list projection. Each output column's expression is
/// evaluated column-at-a-time over the batch (EvalBatch), hoisting
/// the expression-tree dispatch out of the per-row loop.
///
/// `SELECT *` uses pass-through mode: input rows are forwarded
/// unchanged (star mixed with expressions is not supported, matching
/// the previous executor).
class ProjectNode : public PlanNode {
 public:
  /// Projection form.
  ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> projections);

  /// Pass-through (`SELECT *`) form.
  explicit ProjectNode(PlanNodePtr child);

  const char* name() const override { return "Project"; }
  std::string annotation() const override;
  size_t output_width() const override;
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  std::vector<BoundExprPtr> projections_;
  bool pass_through_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_PROJECT_NODE_H_
