#ifndef NLQ_ENGINE_EXEC_PROJECT_NODE_H_
#define NLQ_ENGINE_EXEC_PROJECT_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// SELECT-list projection. Each output column's expression is
/// evaluated column-at-a-time over the batch (EvalBatch), hoisting
/// the expression-tree dispatch out of the per-row loop.
///
/// When the planner compiled some projections to bytecode, `compiled`
/// carries one program per column (nullptr entries stay interpreted —
/// e.g. a scalar-UDF column next to arithmetic ones) and those columns
/// run through the register VM.
///
/// `SELECT *` uses pass-through mode: input rows are forwarded
/// unchanged (star mixed with expressions is not supported, matching
/// the previous executor).
class ProjectNode : public PlanNode {
 public:
  /// Projection form. `compiled` is empty or parallel to projections.
  ProjectNode(PlanNodePtr child, std::vector<BoundExprPtr> projections,
              std::vector<CompiledExprPtr> compiled = {},
              const QueryContext* ctx = nullptr);

  /// Pass-through (`SELECT *`) form.
  explicit ProjectNode(PlanNodePtr child);

  const char* name() const override { return "Project"; }
  std::string annotation() const override;
  size_t output_width() const override;
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  std::vector<BoundExprPtr> projections_;
  std::vector<CompiledExprPtr> compiled_;
  bool pass_through_;
  const QueryContext* ctx_ = nullptr;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_PROJECT_NODE_H_
