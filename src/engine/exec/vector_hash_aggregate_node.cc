#include "engine/exec/vector_hash_aggregate_node.h"

#include <memory>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "engine/exec/aggregate_state.h"
#include "engine/exec/gather_node.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::NullBitGet;
using storage::Row;

class VectorAggregateStream : public ExecStream {
 public:
  explicit VectorAggregateStream(const VectorHashAggregateNode* node)
      : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const VectorHashAggregateNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

/// ROW phase over one columnar stream: keys and aggregate arguments
/// run through the VM per batch, groups resolve per row in batch
/// order, accumulation runs per (spec, row) off the result registers.
Status AccumulateColumnStream(const PlanNode& child, size_t stream,
                              const BoundAggregation& agg,
                              const std::vector<CompiledExprPtr>& key_progs,
                              const std::vector<VectorAggSpec>& spec_args,
                              const std::vector<int>& slot_to_col,
                              const QueryContext* query_ctx,
                              GroupMap* groups) {
  NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr source, child.OpenColumnStream(stream));
  const std::vector<AggregateSpec>& specs = agg.specs;
  const size_t num_keys = key_progs.size();
  MemoryTracker* memory =
      query_ctx != nullptr ? query_ctx->memory() : nullptr;

  ColumnSpanBatch batch;
  ExprVM vm;
  std::vector<std::vector<Datum>> key_cols(num_keys);
  Row key(num_keys);
  std::vector<GroupState*> group_of;
  std::vector<ExprVM::Reg> arg_regs;
  std::vector<Datum> scratch;

  for (;;) {
    if (query_ctx != nullptr) NLQ_RETURN_IF_ERROR(query_ctx->CheckAlive());
    NLQ_ASSIGN_OR_RETURN(const bool more, source->Next(&batch));
    if (!more) break;
    const size_t n = batch.rows;

    for (size_t k = 0; k < num_keys; ++k) {
      vm.EvalSpans(*key_progs[k], batch, slot_to_col, n);
      key_cols[k].resize(n);
      vm.BoxResult(*key_progs[k], n, key_cols[k].data());
    }

    // Resolve groups per row, in batch order — the insertion sequence
    // (and therefore the hash table's iteration order at FINALIZE)
    // matches the row path's exactly.
    group_of.resize(n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < num_keys; ++k) key[k] = key_cols[k][r];
      auto it = groups->find(key);
      if (it == groups->end()) {
        NLQ_ASSIGN_OR_RETURN(GroupState fresh,
                             InitGroupState(specs, key, memory));
        it = groups->emplace(key, std::move(fresh)).first;
      }
      group_of[r] = &it->second;
    }

    for (size_t i = 0; i < specs.size(); ++i) {
      const AggregateSpec& spec = specs[i];
      if (spec.kind == AggregateSpec::Kind::kCountStar) {
        for (size_t r = 0; r < n; ++r) ++group_of[r]->builtin[i].count;
        continue;
      }
      if (spec.kind == AggregateSpec::Kind::kUdf) {
        const std::vector<VectorAggArg>& args = spec_args[i].args;
        // Copy every non-constant argument's result out of the VM so
        // all argument lanes coexist for the per-row assembly.
        arg_regs.resize(args.size());
        for (size_t a = 0; a < args.size(); ++a) {
          if (args[a].prog == nullptr) continue;
          vm.EvalSpans(*args[a].prog, batch, slot_to_col, n);
          vm.CopyResult(*args[a].prog, n, &arg_regs[a]);
        }
        scratch.resize(args.size());
        for (size_t r = 0; r < n; ++r) {
          for (size_t a = 0; a < args.size(); ++a) {
            scratch[a] = args[a].prog == nullptr
                             ? args[a].constant
                             : BoxRegValue(arg_regs[a],
                                           args[a].prog->result_type(), r);
          }
          NLQ_FAILPOINT("udf_accumulate");
          NLQ_RETURN_IF_ERROR(
              spec.udaf->Accumulate(group_of[r]->udf_states[i], scratch));
        }
        continue;
      }
      // SQL builtin: one argument program; accumulate straight off the
      // result register, skipping NULL lanes like the interpreter.
      const CompiledExpr& prog = *spec_args[i].args[0].prog;
      vm.EvalSpans(prog, batch, slot_to_col, n);
      const ExprVM::Reg& res = vm.result(prog);
      const bool is_double = prog.result_type() == DataType::kDouble;
      for (size_t r = 0; r < n; ++r) {
        if (res.has_nulls && NullBitGet(res.nulls.data(), r)) continue;
        const double x =
            is_double ? res.d[r] : static_cast<double>(res.i[r]);
        BuiltinAggState& b = group_of[r]->builtin[i];
        switch (spec.kind) {
          case AggregateSpec::Kind::kSum:
          case AggregateSpec::Kind::kAvg:
            b.sum += x;
            ++b.count;
            break;
          case AggregateSpec::Kind::kCount:
            ++b.count;
            break;
          case AggregateSpec::Kind::kMin:
            if (!b.seen || x < b.min) b.min = x;
            break;
          case AggregateSpec::Kind::kMax:
            if (!b.seen || x > b.max) b.max = x;
            break;
          default:
            break;
        }
        b.seen = true;
      }
    }

    if (query_ctx != nullptr && query_ctx->stats() != nullptr) {
      query_ctx->stats()->rows_vectorized.fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

}  // namespace

VectorHashAggregateNode::VectorHashAggregateNode(
    PlanNodePtr child, const ColumnarScanNode* scan, BoundAggregation agg,
    std::vector<CompiledExprPtr> key_progs,
    std::vector<VectorAggSpec> spec_args, std::vector<int> slot_to_col,
    bool has_having, std::string having_text, size_t num_output,
    ThreadPool* pool, const QueryContext* ctx)
    : PlanNode(std::move(child)),
      scan_(scan),
      agg_(std::move(agg)),
      key_progs_(std::move(key_progs)),
      spec_args_(std::move(spec_args)),
      slot_to_col_(std::move(slot_to_col)),
      has_having_(has_having),
      having_text_(std::move(having_text)),
      num_output_(num_output),
      pool_(pool),
      ctx_(ctx) {}

std::string VectorHashAggregateNode::annotation() const {
  std::string out =
      StringPrintf("%zu group key(s), %zu aggregate(s)",
                   agg_.key_exprs.size(), agg_.specs.size());
  size_t udfs = 0;
  for (const auto& spec : agg_.specs) {
    if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
  }
  if (udfs > 0) out += StringPrintf(", %zu aggregate UDF call(s)", udfs);
  if (has_having_) out += ", having: " + having_text_;
  out += StringPrintf("; merge: %zu partial state(s) per group, %zu worker(s)",
                      child_->num_streams(),
                      pool_ != nullptr ? pool_->num_workers() : 1);
  size_t ops = 0;
  for (const CompiledExprPtr& prog : key_progs_) {
    ops += prog->num_instructions();
  }
  for (const VectorAggSpec& spec : spec_args_) {
    for (const VectorAggArg& arg : spec.args) {
      if (arg.prog != nullptr) ops += arg.prog->num_instructions();
    }
  }
  out += StringPrintf("; compiled, %zu op(s)", ops);
  if (!view_note_.empty()) out += ", " + view_note_;
  return out;
}

StatusOr<ExecStreamPtr> VectorHashAggregateNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new VectorAggregateStream(this));
}

StatusOr<std::vector<Row>> VectorHashAggregateNode::Compute() const {
  // Fill the decoded-column cache one partition per task BEFORE the
  // morsel drain (Table::EnsureDecodedColumns is not safe against
  // concurrent fills of the same partition).
  NLQ_RETURN_IF_ERROR(scan_->WarmCache(pool_));

  // ROW phase: one hash table per columnar stream, drained in
  // parallel. On failure `partials` is destroyed whole — every partial
  // group state (and its UDF heap segments) is torn down with it.
  const size_t streams = child_->num_streams();
  std::vector<GroupMap> partials(streams);
  auto drain_one = [&](size_t s) -> Status {
    return AccumulateColumnStream(*child_, s, agg_, key_progs_, spec_args_,
                                  slot_to_col_, ctx_, &partials[s]);
  };
  if (streams == 1 || pool_ == nullptr) {
    for (size_t s = 0; s < streams; ++s) NLQ_RETURN_IF_ERROR(drain_one(s));
  } else {
    NLQ_RETURN_IF_ERROR(pool_->ParallelFor(streams, drain_one, ctx_));
  }

  return MergeAndFinalize(agg_, has_having_, num_output_, &partials,
                          ctx_ != nullptr ? ctx_->memory() : nullptr);
}

}  // namespace nlq::engine::exec
