#include "engine/exec/vector_project_node.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;

class VectorProjectStream : public ExecStream {
 public:
  VectorProjectStream(ColumnStreamPtr input,
                      const std::vector<CompiledExprPtr>* programs,
                      const std::vector<int>* slot_to_col,
                      const QueryContext* ctx)
      : input_(std::move(input)),
        programs_(programs),
        slot_to_col_(slot_to_col),
        ctx_(ctx),
        cols_(programs->size()) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    if (pos_ >= buffered_) {
      NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(&batch_));
      if (!more) return false;
      const size_t n = batch_.rows;
      // Box each program's result right after evaluating it: programs
      // number their registers independently, so the next evaluation
      // reuses the VM's register file.
      for (size_t c = 0; c < programs_->size(); ++c) {
        const CompiledExpr& prog = *(*programs_)[c];
        vm_.EvalSpans(prog, batch_, *slot_to_col_, n);
        cols_[c].resize(n);
        vm_.BoxResult(prog, n, cols_[c].data());
      }
      if (ctx_ != nullptr && ctx_->stats() != nullptr) {
        ctx_->stats()->rows_vectorized.fetch_add(n,
                                                 std::memory_order_relaxed);
      }
      buffered_ = n;
      pos_ = 0;
    }
    const size_t take = std::min(buffered_ - pos_, out->capacity());
    const size_t width = programs_->size();
    for (size_t i = 0; i < take; ++i) {
      storage::Row& row = out->AppendRow();
      row.resize(width);
      for (size_t c = 0; c < width; ++c) row[c] = cols_[c][pos_ + i];
    }
    pos_ += take;
    return true;
  }

 private:
  ColumnStreamPtr input_;
  const std::vector<CompiledExprPtr>* programs_;
  const std::vector<int>* slot_to_col_;
  const QueryContext* ctx_;
  ColumnSpanBatch batch_;
  std::vector<std::vector<Datum>> cols_;
  size_t buffered_ = 0;
  size_t pos_ = 0;
  ExprVM vm_;
};

}  // namespace

VectorProjectNode::VectorProjectNode(PlanNodePtr child,
                                     std::vector<CompiledExprPtr> programs,
                                     std::vector<int> slot_to_col,
                                     const QueryContext* ctx)
    : PlanNode(std::move(child)),
      programs_(std::move(programs)),
      slot_to_col_(std::move(slot_to_col)),
      ctx_(ctx) {}

std::string VectorProjectNode::annotation() const {
  size_t ops = 0;
  for (const CompiledExprPtr& prog : programs_) ops += prog->num_instructions();
  return StringPrintf("%zu column(s); compiled, %zu op(s)", programs_.size(),
                      ops);
}

StatusOr<ExecStreamPtr> VectorProjectNode::OpenStreamImpl(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr input, child_->OpenColumnStream(s));
  return ExecStreamPtr(new VectorProjectStream(std::move(input), &programs_,
                                               &slot_to_col_, ctx_));
}

}  // namespace nlq::engine::exec
