#ifndef NLQ_ENGINE_EXEC_AGGREGATE_STATE_H_
#define NLQ_ENGINE_EXEC_AGGREGATE_STATE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "engine/expr.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::engine::exec {

/// Per-group aggregation state shared by the row-at-a-time
/// HashAggregateNode and the vectorized VectorHashAggregateNode. Both
/// run the same INIT / ROW / MERGE / FINALIZE protocol over these
/// structures, which is what keeps their results byte-identical: only
/// the ROW-phase argument evaluation differs (interpreted Datums vs
/// compiled bytecode registers).

struct BuiltinAggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool seen = false;
};

struct GroupState {
  storage::Row keys;
  std::vector<BuiltinAggState> builtin;  // parallel to specs
  std::vector<std::unique_ptr<udf::HeapSegment>> heaps;
  std::vector<void*> udf_states;  // parallel to specs, null for builtins
};

struct RowKeyHash {
  size_t operator()(const storage::Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const storage::Datum& d : row) {
      h ^= d.KeyHash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const storage::Row& a, const storage::Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].KeyEquals(b[i])) return false;
    }
    return true;
  }
};

using GroupMap =
    std::unordered_map<storage::Row, GroupState, RowKeyHash, RowKeyEq>;

/// INIT: zeroed builtin state; aggregate UDFs allocate their state
/// inside a fresh HeapSegment (the per-thread UDF heap). Charges the
/// hash-table entry against `memory` when given.
StatusOr<GroupState> InitGroupState(const std::vector<AggregateSpec>& specs,
                                    storage::Row keys, MemoryTracker* memory);

/// MERGE: folds `src` into `dst` (builtin states added/min-maxed,
/// aggregate UDFs via their Merge phase; hits the `udf_merge`
/// failpoint per UDF spec).
Status MergeGroup(const std::vector<AggregateSpec>& specs, GroupState* dst,
                  GroupState* src);

/// FINALIZE one group: one Datum per aggregate spec.
StatusOr<storage::Row> FinalizeGroup(const std::vector<AggregateSpec>& specs,
                                     const GroupState& state);

/// MERGE + FINALIZE tail shared by both hash-aggregate operators:
/// folds partials[1..] into partials[0] in stream order, seeds the
/// empty-input global group when there are no GROUP BY keys, then per
/// group (in partials[0]'s map order) finalizes aggregates, applies
/// HAVING (`projections[num_output]` when `has_having`) and evaluates
/// the `num_output` SELECT projections over (keys, aggs).
StatusOr<std::vector<storage::Row>> MergeAndFinalize(
    const BoundAggregation& agg, bool has_having, size_t num_output,
    std::vector<GroupMap>* partials, MemoryTracker* memory);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_AGGREGATE_STATE_H_
