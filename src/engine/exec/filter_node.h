#ifndef NLQ_ENGINE_EXEC_FILTER_NODE_H_
#define NLQ_ENGINE_EXEC_FILTER_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// Residual WHERE filter: evaluates the bound predicate over each
/// batch (batch expression evaluation) and compacts survivors in
/// place. SQL semantics: a row passes when the predicate is non-NULL
/// and non-zero.
///
/// When the planner compiled the predicate to bytecode, `compiled` is
/// non-null and each batch runs through the register VM instead of the
/// expression tree (bit-identical verdicts — same NULL/zero rule).
class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, BoundExprPtr predicate,
             std::vector<std::string> conjunct_text,
             CompiledExprPtr compiled = nullptr,
             const QueryContext* ctx = nullptr);

  const char* name() const override { return "Filter"; }
  std::string annotation() const override;
  size_t output_width() const override { return child_->output_width(); }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  BoundExprPtr predicate_;
  std::vector<std::string> conjunct_text_;
  CompiledExprPtr compiled_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_FILTER_NODE_H_
