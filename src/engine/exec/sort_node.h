#ifndef NLQ_ENGINE_EXEC_SORT_NODE_H_
#define NLQ_ENGINE_EXEC_SORT_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"
#include "storage/value.h"

namespace nlq::engine::exec {

/// Three-way ORDER BY comparison. NULLs sort first; BIGINT pairs
/// compare as integers (exact above 2^53); mixed / floating keys
/// compare as doubles; strings lexicographically.
int CompareDatum(const storage::Datum& a, const storage::Datum& b);

/// ORDER BY over the materialized child output. Keys are evaluated
/// once per row into a key table, an index permutation is sorted
/// (ties broken by input position, so the order matches a stable
/// sort), and the permutation is applied in place with row moves.
/// When a LIMIT sits directly above, only the first `limit` positions
/// are sorted (std::partial_sort) and the rest are dropped.
class SortNode : public PlanNode {
 public:
  /// `limit` < 0 means no limit hint.
  SortNode(PlanNodePtr child, std::vector<BoundExprPtr> key_exprs,
           std::vector<bool> descending, int64_t limit,
           const QueryContext* ctx = nullptr);

  const char* name() const override { return "Sort"; }
  std::string annotation() const override;
  size_t output_width() const override { return child_->output_width(); }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  /// Sorts `rows` in place by this node's keys (applying the LIMIT
  /// hint). Exposed for the stream implementation and for tests.
  Status SortRows(std::vector<storage::Row>* rows) const;

 private:
  std::vector<BoundExprPtr> key_exprs_;
  std::vector<bool> descending_;
  int64_t limit_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_SORT_NODE_H_
