#include "engine/exec/aggregate_state.h"

#include <utility>

#include "common/failpoint.h"
#include "engine/exec/gather_node.h"

namespace nlq::engine::exec {

using storage::DataType;
using storage::Datum;
using storage::Row;

StatusOr<GroupState> InitGroupState(const std::vector<AggregateSpec>& specs,
                                    Row keys, MemoryTracker* memory) {
  if (memory != nullptr) {
    // Hash-table entry overhead: the group's key row plus the three
    // parallel state vectors (heap segment charges ride on the
    // segments themselves, below).
    size_t bytes = sizeof(GroupState) + ApproxRowBytes(keys) +
                   specs.size() * (sizeof(BuiltinAggState) +
                                   sizeof(std::unique_ptr<udf::HeapSegment>) +
                                   sizeof(void*));
    NLQ_RETURN_IF_ERROR(memory->Charge(bytes, "hash-aggregate group"));
  }
  GroupState state;
  state.keys = std::move(keys);
  state.builtin.resize(specs.size());
  state.heaps.resize(specs.size());
  state.udf_states.resize(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    NLQ_ASSIGN_OR_RETURN(state.heaps[i], udf::HeapSegment::Create(memory));
    NLQ_ASSIGN_OR_RETURN(void* udf_state,
                         specs[i].udaf->Init(state.heaps[i].get()));
    state.udf_states[i] = udf_state;
  }
  return state;
}

Status MergeGroup(const std::vector<AggregateSpec>& specs, GroupState* dst,
                  GroupState* src) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == AggregateSpec::Kind::kUdf) {
      NLQ_FAILPOINT("udf_merge");
      NLQ_RETURN_IF_ERROR(
          specs[i].udaf->Merge(dst->udf_states[i], src->udf_states[i]));
      continue;
    }
    BuiltinAggState& d = dst->builtin[i];
    const BuiltinAggState& s = src->builtin[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.seen) {
      if (!d.seen || s.min < d.min) d.min = s.min;
      if (!d.seen || s.max > d.max) d.max = s.max;
      d.seen = true;
    }
  }
  return Status::OK();
}

StatusOr<Row> FinalizeGroup(const std::vector<AggregateSpec>& specs,
                            const GroupState& state) {
  Row out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggregateSpec& spec = specs[i];
    const BuiltinAggState& b = state.builtin[i];
    switch (spec.kind) {
      case AggregateSpec::Kind::kCountStar:
      case AggregateSpec::Kind::kCount:
        out[i] = Datum::Int64(b.count);
        break;
      case AggregateSpec::Kind::kSum:
        out[i] = b.seen ? Datum::Double(b.sum) : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kAvg:
        out[i] = b.count > 0
                     ? Datum::Double(b.sum / static_cast<double>(b.count))
                     : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        if (!b.seen) {
          out[i] = Datum::Null(spec.result_type);
          break;
        }
        const double v =
            spec.kind == AggregateSpec::Kind::kMin ? b.min : b.max;
        out[i] = spec.result_type == DataType::kInt64
                     ? Datum::Int64(static_cast<int64_t>(v))
                     : Datum::Double(v);
        break;
      }
      case AggregateSpec::Kind::kUdf: {
        NLQ_ASSIGN_OR_RETURN(Datum v, spec.udaf->Finalize(state.udf_states[i]));
        out[i] = std::move(v);
        break;
      }
    }
  }
  return out;
}

StatusOr<std::vector<Row>> MergeAndFinalize(const BoundAggregation& agg,
                                            bool has_having, size_t num_output,
                                            std::vector<GroupMap>* partials,
                                            MemoryTracker* memory) {
  // MERGE phase: fold partial states into stream 0's table.
  GroupMap& global = (*partials)[0];
  for (size_t p = 1; p < partials->size(); ++p) {
    for (auto& [key, state] : (*partials)[p]) {
      auto it = global.find(key);
      if (it == global.end()) {
        global.emplace(key, std::move(state));
      } else {
        NLQ_RETURN_IF_ERROR(MergeGroup(agg.specs, &it->second, &state));
      }
    }
    (*partials)[p].clear();
  }

  // Global aggregate over empty input still yields one row.
  if (global.empty() && agg.key_exprs.empty()) {
    NLQ_ASSIGN_OR_RETURN(GroupState fresh,
                         InitGroupState(agg.specs, Row{}, memory));
    global.emplace(Row{}, std::move(fresh));
  }

  // FINALIZE phase: finalize aggregates, filter by HAVING, project.
  std::vector<Row> rows;
  rows.reserve(global.size());
  Status error;
  for (const auto& [key, state] : global) {
    NLQ_ASSIGN_OR_RETURN(Row agg_values, FinalizeGroup(agg.specs, state));
    EvalContext ctx;
    ctx.keys = &state.keys;
    ctx.aggs = &agg_values;
    ctx.error = &error;
    if (has_having) {
      const Datum keep = agg.projections[num_output]->Eval(ctx);
      NLQ_RETURN_IF_ERROR(error);
      if (keep.is_null() || keep.AsDouble() == 0.0) continue;
    }
    Row out(num_output);
    for (size_t c = 0; c < num_output; ++c) {
      out[c] = agg.projections[c]->Eval(ctx);
    }
    NLQ_RETURN_IF_ERROR(error);
    rows.push_back(std::move(out));
  }
  return rows;
}

}  // namespace nlq::engine::exec
