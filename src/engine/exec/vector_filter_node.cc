#include "engine/exec/vector_filter_node.h"

#include <utility>

#include "common/metrics.h"
#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

class VectorFilterStream : public ColumnStream {
 public:
  VectorFilterStream(ColumnStreamPtr input, const CompiledExpr* compiled,
                     const std::vector<int>* slot_to_col,
                     const QueryContext* ctx)
      : input_(std::move(input)),
        compiled_(compiled),
        slot_to_col_(slot_to_col),
        ctx_(ctx) {}

  StatusOr<bool> Next(ColumnSpanBatch* out) override {
    // Keep pulling until a batch has survivors — downstream consumers
    // rely on span batches never being empty.
    for (;;) {
      NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(out));
      if (!more) return false;
      const size_t n = out->rows;
      vm_.EvalSpans(*compiled_, *out, *slot_to_col_, n);
      keep_.assign(n, 1);
      vm_.AndResultIntoKeep(*compiled_, n, keep_.data());
      if (ctx_ != nullptr && ctx_->stats() != nullptr) {
        ctx_->stats()->rows_vectorized.fetch_add(n,
                                                 std::memory_order_relaxed);
      }
      if (CompactColumnSpans(out, keep_.data(), &scratch_) > 0) return true;
    }
  }

 private:
  ColumnStreamPtr input_;
  const CompiledExpr* compiled_;
  const std::vector<int>* slot_to_col_;
  const QueryContext* ctx_;
  ExprVM vm_;
  std::vector<uint8_t> keep_;
  std::vector<ScratchColumn> scratch_;
};

}  // namespace

VectorFilterNode::VectorFilterNode(PlanNodePtr child, CompiledExprPtr compiled,
                                   std::vector<int> slot_to_col,
                                   std::vector<std::string> conjunct_text,
                                   const QueryContext* ctx)
    : PlanNode(std::move(child)),
      compiled_(std::move(compiled)),
      slot_to_col_(std::move(slot_to_col)),
      conjunct_text_(std::move(conjunct_text)),
      ctx_(ctx) {}

std::string VectorFilterNode::annotation() const {
  std::string out;
  for (size_t i = 0; i < conjunct_text_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjunct_text_[i];
  }
  out += StringPrintf("; compiled, %zu op(s)", compiled_->num_instructions());
  return out;
}

StatusOr<ExecStreamPtr> VectorFilterNode::OpenStreamImpl(size_t) const {
  return Status::Internal("VectorFilter produces column spans, not rows");
}

StatusOr<ColumnStreamPtr> VectorFilterNode::OpenColumnStreamImpl(
    size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr input, child_->OpenColumnStream(s));
  return ColumnStreamPtr(new VectorFilterStream(std::move(input),
                                                compiled_.get(), &slot_to_col_,
                                                ctx_));
}

}  // namespace nlq::engine::exec
