#include "engine/exec/project_node.h"

#include <utility>

#include "common/metrics.h"
#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;

class ProjectStream : public ExecStream {
 public:
  ProjectStream(ExecStreamPtr input,
                const std::vector<BoundExprPtr>* projections,
                const std::vector<CompiledExprPtr>* compiled,
                const QueryContext* ctx)
      : input_(std::move(input)),
        projections_(projections),
        compiled_(compiled),
        ctx_(ctx) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    if (in_batch_.capacity() == 0 && out->capacity() > 0) {
      in_batch_ = RowBatch(out->capacity());
    }
    NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(&in_batch_));
    if (!more) return false;
    const size_t n = in_batch_.size();
    const size_t width = projections_->size();
    for (size_t i = 0; i < n; ++i) out->AppendRow().resize(width);
    Status error;
    column_.resize(n);
    bool any_compiled = false;
    for (size_t c = 0; c < width; ++c) {
      const CompiledExpr* prog =
          c < compiled_->size() ? (*compiled_)[c].get() : nullptr;
      if (prog != nullptr) {
        vm_.EvalRows(*prog, in_batch_.rows(), n);
        vm_.BoxResult(*prog, n, column_.data());
        any_compiled = true;
      } else {
        (*projections_)[c]->EvalBatch(in_batch_.rows(), n, &error,
                                      column_.data());
      }
      for (size_t i = 0; i < n; ++i) {
        out->row(i)[c] = std::move(column_[i]);
      }
    }
    NLQ_RETURN_IF_ERROR(error);
    if (any_compiled && ctx_ != nullptr && ctx_->stats() != nullptr) {
      ctx_->stats()->rows_vectorized.fetch_add(n, std::memory_order_relaxed);
    }
    return true;
  }

 private:
  ExecStreamPtr input_;
  const std::vector<BoundExprPtr>* projections_;
  const std::vector<CompiledExprPtr>* compiled_;
  const QueryContext* ctx_;
  RowBatch in_batch_{0};
  std::vector<Datum> column_;
  ExprVM vm_;
};

}  // namespace

ProjectNode::ProjectNode(PlanNodePtr child,
                         std::vector<BoundExprPtr> projections,
                         std::vector<CompiledExprPtr> compiled,
                         const QueryContext* ctx)
    : PlanNode(std::move(child)),
      projections_(std::move(projections)),
      compiled_(std::move(compiled)),
      pass_through_(false),
      ctx_(ctx) {}

ProjectNode::ProjectNode(PlanNodePtr child)
    : PlanNode(std::move(child)), pass_through_(true) {}

std::string ProjectNode::annotation() const {
  if (pass_through_) return "*";
  std::string out = StringPrintf("%zu column(s)", projections_.size());
  size_t num_compiled = 0;
  size_t ops = 0;
  for (const CompiledExprPtr& prog : compiled_) {
    if (prog == nullptr) continue;
    ++num_compiled;
    ops += prog->num_instructions();
  }
  if (num_compiled > 0) {
    out += StringPrintf("; compiled %zu/%zu, %zu op(s)", num_compiled,
                        projections_.size(), ops);
  }
  return out;
}

size_t ProjectNode::output_width() const {
  return pass_through_ ? child_->output_width() : projections_.size();
}

StatusOr<ExecStreamPtr> ProjectNode::OpenStreamImpl(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr input, child_->OpenStream(s));
  if (pass_through_) return input;  // forward child batches unchanged
  return ExecStreamPtr(
      new ProjectStream(std::move(input), &projections_, &compiled_, ctx_));
}

}  // namespace nlq::engine::exec
