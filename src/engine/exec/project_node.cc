#include "engine/exec/project_node.h"

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;

class ProjectStream : public ExecStream {
 public:
  ProjectStream(ExecStreamPtr input,
                const std::vector<BoundExprPtr>* projections)
      : input_(std::move(input)), projections_(projections) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    if (in_batch_.capacity() == 0 && out->capacity() > 0) {
      in_batch_ = RowBatch(out->capacity());
    }
    NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(&in_batch_));
    if (!more) return false;
    const size_t n = in_batch_.size();
    const size_t width = projections_->size();
    for (size_t i = 0; i < n; ++i) out->AppendRow().resize(width);
    Status error;
    column_.resize(n);
    for (size_t c = 0; c < width; ++c) {
      (*projections_)[c]->EvalBatch(in_batch_.rows(), n, &error,
                                    column_.data());
      for (size_t i = 0; i < n; ++i) {
        out->row(i)[c] = std::move(column_[i]);
      }
    }
    NLQ_RETURN_IF_ERROR(error);
    return true;
  }

 private:
  ExecStreamPtr input_;
  const std::vector<BoundExprPtr>* projections_;
  RowBatch in_batch_{0};
  std::vector<Datum> column_;
};

}  // namespace

ProjectNode::ProjectNode(PlanNodePtr child,
                         std::vector<BoundExprPtr> projections)
    : PlanNode(std::move(child)),
      projections_(std::move(projections)),
      pass_through_(false) {}

ProjectNode::ProjectNode(PlanNodePtr child)
    : PlanNode(std::move(child)), pass_through_(true) {}

std::string ProjectNode::annotation() const {
  if (pass_through_) return "*";
  return StringPrintf("%zu column(s)", projections_.size());
}

size_t ProjectNode::output_width() const {
  return pass_through_ ? child_->output_width() : projections_.size();
}

StatusOr<ExecStreamPtr> ProjectNode::OpenStreamImpl(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr input, child_->OpenStream(s));
  if (pass_through_) return input;  // forward child batches unchanged
  return ExecStreamPtr(new ProjectStream(std::move(input), &projections_));
}

}  // namespace nlq::engine::exec
