#include "engine/exec/maintained_view_node.h"

#include <utility>

#include "common/strings.h"
#include "engine/exec/gather_node.h"

namespace nlq::engine::exec {
namespace {

using storage::Row;

class MaintainedViewStream : public ExecStream {
 public:
  explicit MaintainedViewStream(const MaintainedViewNode* node)
      : node_(node) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, node_->Compute());
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const MaintainedViewNode* node_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

}  // namespace

MaintainedViewNode::MaintainedViewNode(
    ViewRegistry* registry, ViewDescriptor descriptor,
    std::vector<ColumnarAggSpec> specs, std::vector<BoundExprPtr> projections,
    size_t num_output, std::string view_state, ThreadPool* pool,
    const QueryContext* ctx)
    : PlanNode(nullptr),
      registry_(registry),
      descriptor_(std::move(descriptor)),
      specs_(std::move(specs)),
      projections_(std::move(projections)),
      num_output_(num_output),
      view_state_(std::move(view_state)),
      pool_(pool),
      ctx_(ctx) {
  descriptor_.specs = &specs_;
}

std::string MaintainedViewNode::annotation() const {
  std::string out = StringPrintf(
      "%s: %zu aggregate(s), %zu partition(s), %s",
      descriptor_.table_name.c_str(), specs_.size(),
      descriptor_.table->num_partitions(), view_state_.c_str());
  if (!descriptor_.filters.empty()) {
    out += ", filter: ";
    for (size_t i = 0; i < descriptor_.filters.size(); ++i) {
      if (i > 0) out += " AND ";
      out += descriptor_.filters[i].text;
    }
  }
  return out;
}

StatusOr<ExecStreamPtr> MaintainedViewNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(new MaintainedViewStream(this));
}

StatusOr<std::vector<Row>> MaintainedViewNode::Compute() const {
  NLQ_ASSIGN_OR_RETURN(Row agg_values,
                       registry_->Serve(descriptor_, pool_, ctx_));
  const Row empty_keys;
  Status error;
  EvalContext ctx;
  ctx.keys = &empty_keys;
  ctx.aggs = &agg_values;
  ctx.error = &error;
  Row out(num_output_);
  for (size_t c = 0; c < num_output_; ++c) {
    out[c] = projections_[c]->Eval(ctx);
  }
  NLQ_RETURN_IF_ERROR(error);
  std::vector<Row> rows;
  rows.push_back(std::move(out));
  return rows;
}

}  // namespace nlq::engine::exec
