#include "engine/exec/cross_join_node.h"

#include <algorithm>

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Row;

class CrossJoinStream : public ExecStream {
 public:
  CrossJoinStream(ExecStreamPtr input, const std::vector<Row>* build,
                  size_t out_width)
      : input_(std::move(input)), build_(build), out_width_(out_width) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    if (build_->empty()) return false;  // empty build side: empty product
    while (!out->full()) {
      if (input_pos_ >= input_.batch().size()) {
        NLQ_ASSIGN_OR_RETURN(const bool more, input_.Pull(out->capacity()));
        if (!more) break;
        input_pos_ = 0;
        build_pos_ = 0;
      }
      const Row& probe = input_.batch().row(input_pos_);
      while (build_pos_ < build_->size() && !out->full()) {
        const Row& build_row = (*build_)[build_pos_++];
        Row& joined = out->AppendRow();
        joined.resize(out_width_);
        std::copy(probe.begin(), probe.end(), joined.begin());
        std::copy(build_row.begin(), build_row.end(),
                  joined.begin() + static_cast<ptrdiff_t>(probe.size()));
      }
      if (build_pos_ >= build_->size()) {
        build_pos_ = 0;
        ++input_pos_;
      }
    }
    return !out->empty();
  }

 private:
  /// Child stream plus its current batch, pulled lazily so the batch
  /// capacity can mirror the output batch the caller drives us with.
  class Input {
   public:
    explicit Input(ExecStreamPtr stream) : stream_(std::move(stream)) {}
    const RowBatch& batch() const { return batch_; }
    StatusOr<bool> Pull(size_t capacity) {
      if (batch_.capacity() == 0 && capacity > 0) batch_ = RowBatch(capacity);
      return stream_->Next(&batch_);
    }

   private:
    ExecStreamPtr stream_;
    RowBatch batch_{0};
  };

  Input input_;
  const std::vector<Row>* build_;
  size_t out_width_;
  size_t input_pos_ = 0;  // past-the-end forces an initial Pull
  size_t build_pos_ = 0;
};

}  // namespace

CrossJoinNode::CrossJoinNode(PlanNodePtr child,
                             std::vector<storage::Row> build_rows,
                             size_t build_width, std::string display_name,
                             std::vector<std::string> pushed_text)
    : PlanNode(std::move(child)),
      build_rows_(std::move(build_rows)),
      build_width_(build_width),
      display_name_(std::move(display_name)),
      pushed_text_(std::move(pushed_text)) {}

std::string CrossJoinNode::annotation() const {
  std::string out = StringPrintf("%s: materialized, %zu rows",
                                 display_name_.c_str(), build_rows_.size());
  for (size_t i = 0; i < pushed_text_.size(); ++i) {
    out += i == 0 ? " after pushdown: " : " AND ";
    out += pushed_text_[i];
  }
  return out;
}

size_t CrossJoinNode::output_width() const {
  return child_->output_width() + build_width_;
}

StatusOr<ExecStreamPtr> CrossJoinNode::OpenStreamImpl(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr input, child_->OpenStream(s));
  return ExecStreamPtr(
      new CrossJoinStream(std::move(input), &build_rows_, output_width()));
}

}  // namespace nlq::engine::exec
