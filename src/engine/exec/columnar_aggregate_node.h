#ifndef NLQ_ENGINE_EXEC_COLUMNAR_AGGREGATE_NODE_H_
#define NLQ_ENGINE_EXEC_COLUMNAR_AGGREGATE_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "engine/exec/columnar_scan_node.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// One aggregate call on the columnar fast path. Mirrors
/// AggregateSpec, but the row-level argument expressions are reduced
/// to column indices into the child scan's projection (they were bare
/// column references — that is what made the query eligible) plus the
/// leading constant literal arguments of an aggregate UDF call.
struct ColumnarAggSpec {
  AggregateSpec::Kind kind = AggregateSpec::Kind::kCountStar;
  const udf::AggregateUdf* udaf = nullptr;    // for kUdf
  std::vector<storage::Datum> const_args;     // leading literals (kUdf)
  std::vector<size_t> arg_cols;               // scan projection indices
  storage::DataType result_type = storage::DataType::kDouble;
};

/// Pipeline breaker of the columnar fast path: one partial aggregation
/// state per partition, fed column spans (AggregateUdf::AccumulateSpans
/// for UDFs, tight span loops for SQL builtins), merged in partition
/// order and finalized into the single global group's output row.
///
/// State transitions, merge order and NULL handling replicate
/// HashAggregateNode exactly — for the nlq UDFs the fused kernel's
/// per-accumulator row order also matches the row path, so both paths
/// produce byte-identical results and the row path stays usable as a
/// correctness oracle (see tests/columnar_equivalence_test.cc).
class ColumnarAggregateNode : public PlanNode {
 public:
  /// `child` must be the ColumnarScanNode the spec column indices
  /// refer to. `projections` evaluate over EvalContext{keys, aggs}
  /// like HashAggregateNode's (keys is always the empty row here).
  ColumnarAggregateNode(std::unique_ptr<ColumnarScanNode> child,
                        std::vector<ColumnarAggSpec> specs,
                        std::vector<BoundExprPtr> projections,
                        size_t num_output, ThreadPool* pool,
                        const QueryContext* ctx = nullptr);

  const char* name() const override { return "ColumnarAggregate"; }
  std::string annotation() const override;
  size_t output_width() const override { return num_output_; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  /// Runs the full INIT/ROW/MERGE/FINALIZE protocol and returns the
  /// single output row.
  StatusOr<std::vector<storage::Row>> Compute() const;

  /// EXPLAIN view annotation ("view=stale", "view=ineligible (...)"),
  /// appended to the annotation when the planner runs with view
  /// maintenance enabled but this statement cannot (or must not this
  /// once) be served from the registry. Empty = no view commentary,
  /// keeping default EXPLAIN output unchanged.
  void set_view_note(std::string note) { view_note_ = std::move(note); }

 private:
  const ColumnarScanNode* scan_;  // == child_.get()
  std::vector<ColumnarAggSpec> specs_;
  std::vector<BoundExprPtr> projections_;
  size_t num_output_;
  ThreadPool* pool_;
  const QueryContext* ctx_;
  std::string view_note_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_COLUMNAR_AGGREGATE_NODE_H_
