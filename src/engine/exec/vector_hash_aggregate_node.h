#ifndef NLQ_ENGINE_EXEC_VECTOR_HASH_AGGREGATE_NODE_H_
#define NLQ_ENGINE_EXEC_VECTOR_HASH_AGGREGATE_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/threadpool.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/columnar_scan_node.h"
#include "engine/exec/plan.h"
#include "engine/expr.h"

namespace nlq::engine::exec {

/// One aggregate-call argument in the vectorized ROW phase: either a
/// compiled program evaluated per batch, or a literal Datum passed
/// through unchanged (aggregate UDFs like nlq_list take leading
/// VARCHAR configuration literals, which must not require
/// compilation).
struct VectorAggArg {
  CompiledExprPtr prog;     // null when `constant` applies
  storage::Datum constant;
};

/// Per-AggregateSpec compiled arguments, parallel to
/// BoundAggregation::specs. COUNT(*) has none; SQL builtins have
/// exactly one program.
struct VectorAggSpec {
  std::vector<VectorAggArg> args;
};

/// GROUP BY hash aggregation over the columnar pipeline: the same
/// INIT / ROW / MERGE / FINALIZE protocol as HashAggregateNode (the
/// shared state machinery in aggregate_state.h), but the ROW phase
/// evaluates GROUP BY keys and aggregate arguments through compiled
/// bytecode over span batches instead of interpreted Datum trees.
///
/// Bit-exactness with the row path holds because (a) group-key Datums
/// are boxed from the same arithmetic the interpreter performs, (b)
/// groups are inserted per row in batch order (identical hash-table
/// iteration order), and (c) per (group, aggregate) accumulation
/// visits rows in the same order — only the loop nesting (per-spec
/// outer instead of per-row outer) differs, which is observationally
/// identical because argument programs are pure.
class VectorHashAggregateNode : public PlanNode {
 public:
  /// `child` is the columnar chain (ColumnarScan, possibly under a
  /// VectorFilter); `scan` points at its leaf for cache warming.
  VectorHashAggregateNode(PlanNodePtr child, const ColumnarScanNode* scan,
                          BoundAggregation agg,
                          std::vector<CompiledExprPtr> key_progs,
                          std::vector<VectorAggSpec> spec_args,
                          std::vector<int> slot_to_col, bool has_having,
                          std::string having_text, size_t num_output,
                          ThreadPool* pool, const QueryContext* ctx = nullptr);

  const char* name() const override { return "VectorHashAggregate"; }
  std::string annotation() const override;
  size_t output_width() const override { return num_output_; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

  /// Runs the four phases to completion and returns the result rows.
  StatusOr<std::vector<storage::Row>> Compute() const;

  /// EXPLAIN view annotation (e.g. "view=ineligible (group-by)") set
  /// only when the planner runs with view maintenance enabled; empty
  /// keeps the default EXPLAIN output unchanged.
  void set_view_note(std::string note) { view_note_ = std::move(note); }

 private:
  const ColumnarScanNode* scan_;
  BoundAggregation agg_;
  std::vector<CompiledExprPtr> key_progs_;
  std::vector<VectorAggSpec> spec_args_;
  std::vector<int> slot_to_col_;
  bool has_having_;
  std::string having_text_;
  size_t num_output_;
  ThreadPool* pool_;
  const QueryContext* ctx_;
  std::string view_note_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_VECTOR_HASH_AGGREGATE_NODE_H_
