#ifndef NLQ_ENGINE_EXEC_VECTOR_PROJECT_NODE_H_
#define NLQ_ENGINE_EXEC_VECTOR_PROJECT_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/plan.h"

namespace nlq::engine::exec {

/// SELECT-list projection at the top of the columnar pipeline: every
/// output column is a compiled program evaluated over the child's span
/// batches; results are boxed into Datum rows, so this node is where
/// the pipeline crosses back into the row world (its consumer is a
/// Gather or the executor itself).
///
/// A span batch can be much larger than a row batch (cached-mode scan
/// morsels vs the executor's batch capacity), so one evaluated batch
/// is served across several Next() calls.
class VectorProjectNode : public PlanNode {
 public:
  VectorProjectNode(PlanNodePtr child, std::vector<CompiledExprPtr> programs,
                    std::vector<int> slot_to_col,
                    const QueryContext* ctx = nullptr);

  const char* name() const override { return "VectorProject"; }
  std::string annotation() const override;
  size_t output_width() const override { return programs_.size(); }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  std::vector<CompiledExprPtr> programs_;
  std::vector<int> slot_to_col_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_VECTOR_PROJECT_NODE_H_
