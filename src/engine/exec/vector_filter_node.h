#ifndef NLQ_ENGINE_EXEC_VECTOR_FILTER_NODE_H_
#define NLQ_ENGINE_EXEC_VECTOR_FILTER_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/plan.h"

namespace nlq::engine::exec {

/// WHERE filter inside the columnar pipeline: runs a compiled
/// predicate program over each span batch and compacts survivors in
/// place (ColumnarScan → VectorFilter → VectorProject /
/// VectorHashAggregate). A row passes when the program's verdict is
/// non-NULL and non-zero — the row-path FilterNode's rule, over the
/// same program the row path would run, so both paths keep identical
/// rows.
///
/// The planner ANDs every WHERE conjunct it could compile into one
/// program; conjuncts expressible as simple `column op literal`
/// comparisons are pushed into the scan instead and never reach here.
class VectorFilterNode : public PlanNode {
 public:
  /// `slot_to_col[slot]` maps each input slot the program references
  /// to its column index in the child's span batches.
  VectorFilterNode(PlanNodePtr child, CompiledExprPtr compiled,
                   std::vector<int> slot_to_col,
                   std::vector<std::string> conjunct_text,
                   const QueryContext* ctx = nullptr);

  const char* name() const override { return "VectorFilter"; }
  std::string annotation() const override;
  size_t output_width() const override { return child_->output_width(); }

  /// Column-only operator: the row-oriented cursor is unimplemented.
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;
  StatusOr<ColumnStreamPtr> OpenColumnStreamImpl(size_t s) const override;

 private:
  CompiledExprPtr compiled_;
  std::vector<int> slot_to_col_;
  std::vector<std::string> conjunct_text_;
  const QueryContext* ctx_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_VECTOR_FILTER_NODE_H_
