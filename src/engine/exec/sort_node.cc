#include "engine/exec/sort_node.h"

#include <algorithm>

#include "common/strings.h"
#include "engine/exec/gather_node.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::Row;

class SortStream : public ExecStream {
 public:
  SortStream(const SortNode* node, const PlanNode* child,
             size_t batch_capacity, const QueryContext* ctx)
      : node_(node), child_(child), batch_capacity_(batch_capacity),
        ctx_(ctx) {}

  StatusOr<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      NLQ_ASSIGN_OR_RETURN(
          std::vector<Row> rows,
          DrainAllStreams(*child_, /*pool=*/nullptr, batch_capacity_, ctx_));
      NLQ_RETURN_IF_ERROR(node_->SortRows(&rows));
      replay_ = std::make_unique<VectorStream>(std::move(rows));
      materialized_ = true;
    }
    return replay_->Next(out);
  }

 private:
  const SortNode* node_;
  const PlanNode* child_;
  size_t batch_capacity_;
  const QueryContext* ctx_;
  bool materialized_ = false;
  std::unique_ptr<VectorStream> replay_;
};

/// Applies permutation `order` (order[i] = source index of the row
/// that belongs at position i) to `rows` in place by walking its
/// cycles with row moves — no second row vector, no row copies.
void ApplyPermutationInPlace(std::vector<Row>* rows,
                             std::vector<size_t>* order) {
  std::vector<size_t>& ord = *order;
  const size_t n = ord.size();
  for (size_t i = 0; i < n; ++i) {
    if (ord[i] == i) continue;
    Row displaced = std::move((*rows)[i]);
    size_t hole = i;
    while (ord[hole] != i) {
      const size_t src = ord[hole];
      (*rows)[hole] = std::move((*rows)[src]);
      ord[hole] = hole;
      hole = src;
    }
    (*rows)[hole] = std::move(displaced);
    ord[hole] = hole;
  }
}

}  // namespace

int CompareDatum(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a.type() == DataType::kVarchar && b.type() == DataType::kVarchar) {
    const int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Two BIGINT keys compare exactly: values above 2^53 would collide
  // after a double round-trip.
  if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
    const int64_t x = a.int_value();
    const int64_t y = b.int_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

SortNode::SortNode(PlanNodePtr child, std::vector<BoundExprPtr> key_exprs,
                   std::vector<bool> descending, int64_t limit,
                   const QueryContext* ctx)
    : PlanNode(std::move(child)),
      key_exprs_(std::move(key_exprs)),
      descending_(std::move(descending)),
      limit_(limit),
      ctx_(ctx) {}

std::string SortNode::annotation() const {
  std::string out = StringPrintf("%zu key(s)", key_exprs_.size());
  if (limit_ >= 0) {
    out += StringPrintf(", partial top %lld", static_cast<long long>(limit_));
  }
  return out;
}

StatusOr<ExecStreamPtr> SortNode::OpenStreamImpl(size_t) const {
  return ExecStreamPtr(
      new SortStream(this, child_.get(), RowBatch::kDefaultCapacity, ctx_));
}

Status SortNode::SortRows(std::vector<Row>* rows) const {
  const size_t n = rows->size();
  const size_t num_keys = key_exprs_.size();

  // The sort's own buffers — the key table plus the index permutation
  // — count against the query budget (the input rows were already
  // charged as they materialized).
  if (ctx_ != nullptr && ctx_->memory() != nullptr) {
    NLQ_RETURN_IF_ERROR(ctx_->memory()->Charge(
        n * (num_keys * sizeof(Datum) + sizeof(size_t)), "sort buffers"));
  }

  // Evaluate each ORDER BY key once per row, column-at-a-time over
  // the materialized (contiguous) rows.
  std::vector<std::vector<Datum>> keys(num_keys);
  Status error;
  for (size_t k = 0; k < num_keys; ++k) {
    keys[k].resize(n);
    key_exprs_[k]->EvalBatch(rows->data(), n, &error, keys[k].data());
  }
  NLQ_RETURN_IF_ERROR(error);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  // Breaking key ties by input position makes the comparator a strict
  // weak order equal to a stable sort, even under partial_sort.
  const auto less = [&](size_t a, size_t b) {
    for (size_t k = 0; k < num_keys; ++k) {
      int c = CompareDatum(keys[k][a], keys[k][b]);
      if (descending_[k]) c = -c;
      if (c != 0) return c < 0;
    }
    return a < b;
  };
  if (limit_ >= 0 && static_cast<size_t>(limit_) < n) {
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<ptrdiff_t>(limit_),
                      order.end(), less);
    order.resize(static_cast<size_t>(limit_));
    // Move the top rows into place; the tail is dropped wholesale.
    std::vector<Row> top(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      top[i] = std::move((*rows)[order[i]]);
    }
    *rows = std::move(top);
    return Status::OK();
  }
  std::sort(order.begin(), order.end(), less);
  ApplyPermutationInPlace(rows, &order);
  return Status::OK();
}

}  // namespace nlq::engine::exec
