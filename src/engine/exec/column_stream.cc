#include "engine/exec/column_stream.h"

#include "storage/column_batch.h"

namespace nlq::engine::exec {

using storage::NullBitGet;
using storage::NullBitmapWords;
using storage::NullBitSet;

size_t CompactColumnSpans(ColumnSpanBatch* batch, const uint8_t* keep,
                          std::vector<ScratchColumn>* scratch) {
  const size_t rows = batch->rows;
  size_t kept = 0;
  for (size_t r = 0; r < rows; ++r) kept += keep[r] != 0;
  if (kept == rows || kept == 0) {
    batch->rows = kept;
    return kept;
  }
  const size_t ncols = batch->doubles.size();
  if (scratch->size() < ncols) scratch->resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    ScratchColumn& dst = (*scratch)[c];
    const double* dv = batch->doubles[c];
    const int64_t* iv = batch->ints[c];
    const uint64_t* nb = batch->null_bits[c];
    dst.has_nulls = false;
    if (dv != nullptr) dst.doubles.resize(kept);
    if (iv != nullptr) dst.ints.resize(kept);
    if (nb != nullptr) dst.null_bits.assign(NullBitmapWords(kept), 0);
    size_t w = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (!keep[r]) continue;
      if (dv != nullptr) dst.doubles[w] = dv[r];
      if (iv != nullptr) dst.ints[w] = iv[r];
      if (nb != nullptr && NullBitGet(nb, r)) {
        NullBitSet(dst.null_bits.data(), w);
        dst.has_nulls = true;
      }
      ++w;
    }
    batch->doubles[c] = dv != nullptr ? dst.doubles.data() : nullptr;
    batch->ints[c] = iv != nullptr ? dst.ints.data() : nullptr;
    batch->null_bits[c] = dst.has_nulls ? dst.null_bits.data() : nullptr;
  }
  batch->rows = kept;
  return kept;
}

}  // namespace nlq::engine::exec
