#ifndef NLQ_ENGINE_EXEC_GATHER_NODE_H_
#define NLQ_ENGINE_EXEC_GATHER_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/threadpool.h"
#include "engine/exec/plan.h"
#include "storage/value.h"

namespace nlq::engine::exec {

/// Pipeline breaker that funnels the child's parallel streams into
/// one: on the first pull every child stream is drained on the worker
/// pool (one task per stream, the per-AMP parallelism of the previous
/// executor), buffering rows per stream; output preserves partition
/// order, then insertion order within a partition — the same row
/// order the monolithic executor produced.
class GatherNode : public PlanNode {
 public:
  GatherNode(PlanNodePtr child, ThreadPool* pool, size_t batch_capacity,
             const QueryContext* ctx = nullptr);

  const char* name() const override { return "Gather"; }
  std::string annotation() const override;
  size_t output_width() const override { return child_->output_width(); }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  ThreadPool* pool_;
  size_t batch_capacity_;
  const QueryContext* ctx_;
};

/// Drains every stream of `node` in parallel on `pool` (serially when
/// the node has a single stream) and concatenates the rows in stream
/// order. Shared by GatherNode and SortNode. When `ctx` is non-null it
/// is polled at every batch boundary (bounding cancellation latency to
/// one batch per worker) and each buffered batch's approximate row
/// bytes are charged against the query's memory budget; the charges
/// are released with the tracker at statement end.
StatusOr<std::vector<storage::Row>> DrainAllStreams(
    const PlanNode& node, ThreadPool* pool, size_t batch_capacity,
    const QueryContext* ctx = nullptr);

/// Conservative materialized size of `row` for memory accounting: the
/// Datum headers plus container overhead. String payloads are counted
/// by length.
size_t ApproxRowBytes(const storage::Row& row);

/// Streams a materialized row vector batch-by-batch.
class VectorStream : public ExecStream {
 public:
  explicit VectorStream(std::vector<storage::Row> rows)
      : rows_(std::move(rows)) {}

  StatusOr<bool> Next(RowBatch* out) override {
    out->Clear();
    while (pos_ < rows_.size() && !out->full()) {
      out->AppendRow() = std::move(rows_[pos_++]);
    }
    return !out->empty();
  }

 private:
  std::vector<storage::Row> rows_;
  size_t pos_ = 0;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_GATHER_NODE_H_
