#include "engine/exec/view_registry.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "engine/exec/morsel.h"
#include "storage/column_batch.h"

namespace nlq::engine::exec {
namespace {

using storage::ColumnVector;
using storage::DataType;
using storage::Datum;
using storage::Row;

void AppendDoubleBits(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  *out += StringPrintf("%llx", static_cast<unsigned long long>(bits));
}

void AppendDatumKey(const Datum& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
    return;
  }
  switch (v.type()) {
    case DataType::kDouble:
      AppendDoubleBits(v.double_value(), out);
      break;
    case DataType::kInt64:
      *out += StringPrintf("%lld", static_cast<long long>(v.int_value()));
      break;
    case DataType::kVarchar:
      *out += v.string_value();
      break;
  }
}

/// Accumulates rows [begin, end) of `part` into `state` through the
/// exact batch semantics of the streaming columnar scan: spans pointed
/// at the scanner's decoded columns, pushed-down filters ANDed into a
/// keep mask, fully-filtered batches skipped entirely (AccumulateSpans
/// is never called for them — matching ColumnarScanStream::Filter),
/// surviving batches compacted order-preserving. Identical code path
/// shape ⇒ identical FP operation sequence ⇒ identical bits.
Status AccumulateRange(const storage::Table& part, const ViewDescriptor& d,
                       PartialState* state, uint64_t begin, uint64_t end,
                       const QueryContext* ctx, bool use_failpoint,
                       SpanScratch* scratch,
                       std::vector<ScratchColumn>* compact,
                       std::vector<uint8_t>* keep) {
  if (use_failpoint) NLQ_FAILPOINT("view_maintenance");
  storage::ColumnBatchScanner scanner =
      part.ScanColumnBatchRange(d.slots, begin, end, d.batch_capacity);
  storage::ColumnBatch batch;
  ColumnSpanBatch span;
  const size_t ncols = d.slots.size();
  for (;;) {
    if (ctx != nullptr) NLQ_RETURN_IF_ERROR(ctx->CheckAlive());
    const bool more = scanner.Next(&batch);
    if (!scanner.status().ok()) return scanner.status();
    if (!more) break;
    span.rows = batch.size();
    span.doubles.assign(ncols, nullptr);
    span.ints.assign(ncols, nullptr);
    span.null_bits.assign(ncols, nullptr);
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnVector& col = batch.column(c);
      if (col.type == DataType::kDouble) {
        span.doubles[c] = col.double_data();
      } else {
        span.ints[c] = col.int_data();
      }
      if (col.has_nulls()) span.null_bits[c] = col.null_bits.data();
    }
    if (!d.filters.empty()) {
      keep->assign(span.rows, 1);
      for (const ColumnFilter& f : d.filters) {
        ApplyColumnFilter(f, span, keep->data());
      }
      if (CompactColumnSpans(&span, keep->data(), compact) == 0) continue;
    }
    NLQ_RETURN_IF_ERROR(AccumulateSpecsBatch(*d.specs, span, state, scratch));
  }
  if (ctx != nullptr && ctx->stats() != nullptr) {
    ctx->stats()->pages_decoded.fetch_add(scanner.pages_decoded(),
                                          std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace

ViewRegistry::ViewRegistry(size_t max_views, uint64_t memory_limit_bytes)
    : max_views_(max_views), memory_(memory_limit_bytes) {}

std::string ViewRegistry::KeyOf(const ViewDescriptor& d) {
  std::string key = d.table_name;
  key += "|s:";
  for (const size_t slot : d.slots) key += StringPrintf("%zu,", slot);
  key += "|f:";
  for (const ColumnFilter& f : d.filters) {
    key += StringPrintf("%zu~%d~", f.col, static_cast<int>(f.op));
    AppendDoubleBits(f.value, &key);
    key += ";";
  }
  key += "|a:";
  for (const ColumnarAggSpec& spec : *d.specs) {
    key += StringPrintf("%d:", static_cast<int>(spec.kind));
    if (spec.udaf != nullptr) key += spec.udaf->name();
    key += "(";
    for (const Datum& c : spec.const_args) {
      AppendDatumKey(c, &key);
      key += ",";
    }
    key += ")";
    for (const size_t col : spec.arg_cols) key += StringPrintf("%zu,", col);
    key += StringPrintf("%d;", static_cast<int>(spec.result_type));
  }
  key += StringPrintf("|m:%llu", static_cast<unsigned long long>(d.morsel_rows));
  return key;
}

bool ViewRegistry::EntryCurrent(const Entry& e, const ViewDescriptor& d) {
  if (e.table != d.table) return false;  // DROP + CREATE reused the name
  const size_t parts = d.table->num_partitions();
  if (e.epochs.size() != parts) return false;
  for (size_t p = 0; p < parts; ++p) {
    const storage::Table& part = d.table->partition(p);
    if (part.is_spilled()) return false;
    if (part.mutation_epoch() != e.epochs[p]) return false;
    if (part.num_rows() < e.watermarks[p]) return false;
  }
  return true;
}

ViewProbe ViewRegistry::Probe(const ViewDescriptor& d) {
  std::lock_guard<std::mutex> lock(mu_);
  ViewProbe probe;
  probe.total_rows = d.table->num_rows();
  auto it = views_.find(KeyOf(d));
  if (it == views_.end()) return probe;
  if (!EntryCurrent(*it->second, d)) {
    // Stale state can never be reused; drop it now so the next
    // statement re-seeds instead of re-probing a corpse.
    views_.erase(it);
    probe.invalidated = true;
    return probe;
  }
  probe.registered = true;
  for (size_t p = 0; p < d.table->num_partitions(); ++p) {
    probe.delta_rows +=
        d.table->partition(p).num_rows() - it->second->watermarks[p];
  }
  return probe;
}

Status ViewRegistry::AccumulateDeltas(Entry* e, const ViewDescriptor& d,
                                      ThreadPool* pool,
                                      const QueryContext* ctx,
                                      uint64_t* delta_rows) {
  const size_t parts = d.table->num_partitions();
  uint64_t delta = 0;
  for (size_t p = 0; p < parts; ++p) {
    delta += d.table->partition(p).num_rows() - e->watermarks[p];
  }
  *delta_rows = delta;

  auto refresh_one = [&](size_t p) -> Status {
    const storage::Table& part = d.table->partition(p);
    const uint64_t cur = part.num_rows();
    uint64_t wm = e->watermarks[p];
    if (cur == wm) return Status::OK();
    const uint64_t mr = d.morsel_rows;
    auto& plist = e->partials[p];
    SpanScratch scratch;
    std::vector<ScratchColumn> compact(d.slots.size());
    std::vector<uint8_t> keep;
    while (wm < cur) {
      // The morsel the watermark sits in: extend its partial from the
      // watermark to the morsel end (or table end). Morsel boundaries
      // come from the fixed (partition, offset) grid, so the stored
      // partials line up one-to-one with the full-rescan grid; the
      // kernel's strictly sequential per-accumulator chains make
      // resuming mid-morsel bit-identical to one uninterrupted pass.
      const size_t mi = mr == 0 ? 0 : static_cast<size_t>(wm / mr);
      const uint64_t mend =
          mr == 0 ? cur
                  : std::min(cur, (static_cast<uint64_t>(mi) + 1) * mr);
      if (mi >= plist.size()) {
        plist.push_back(std::make_unique<PartialState>());
        NLQ_RETURN_IF_ERROR(InitPartial(*d.specs, &memory_,
                                        plist.back().get()));
      }
      NLQ_RETURN_IF_ERROR(AccumulateRange(part, d, plist[mi].get(), wm, mend,
                                          ctx, /*use_failpoint=*/true,
                                          &scratch, &compact, &keep));
      wm = mend;
    }
    e->watermarks[p] = cur;
    return Status::OK();
  };

  if (parts == 1 || pool == nullptr) {
    for (size_t p = 0; p < parts; ++p) NLQ_RETURN_IF_ERROR(refresh_one(p));
    return Status::OK();
  }
  return pool->ParallelFor(parts, refresh_one, ctx);
}

StatusOr<Row> ViewRegistry::MergeAndFinalize(const Entry& e,
                                             const ViewDescriptor& d) {
  // Fold a CLONE of the stored partials (never the stored state
  // itself: merging mutates the destination, and the registered
  // partials must survive for the next refresh). Clone-then-merge
  // replays the rescan's fold arithmetic exactly: the accumulator
  // starts as a byte copy of the first grid morsel's state, then the
  // remaining morsels fold in morsel-index order.
  PartialState acc;
  bool have_first = false;
  for (const auto& plist : e.partials) {
    for (const auto& pm : plist) {
      if (!have_first) {
        NLQ_RETURN_IF_ERROR(
            ClonePartialInto(*d.specs, /*memory=*/nullptr, *pm, &acc));
        have_first = true;
        continue;
      }
      NLQ_RETURN_IF_ERROR(MergePartial(*d.specs, &acc, pm.get()));
    }
  }
  if (!have_first) {
    // Empty table: the rescan grid has one empty morsel whose partial
    // is a freshly Init-ed state; replicate it.
    NLQ_RETURN_IF_ERROR(InitPartial(*d.specs, /*memory=*/nullptr, &acc));
  }
  return FinalizePartial(*d.specs, acc);
}

StatusOr<Row> ViewRegistry::RescanWithoutView(const ViewDescriptor& d,
                                              ThreadPool* pool,
                                              const QueryContext* ctx) {
  const std::vector<Morsel> grid = BuildMorselGrid(*d.table, d.morsel_rows);
  const size_t n = grid.size();
  std::vector<PartialState> partials(n);
  MemoryTracker* memory = ctx != nullptr ? ctx->memory() : nullptr;
  auto drain_one = [&](size_t m) -> Status {
    NLQ_RETURN_IF_ERROR(InitPartial(*d.specs, memory, &partials[m]));
    SpanScratch scratch;
    std::vector<ScratchColumn> compact(d.slots.size());
    std::vector<uint8_t> keep;
    return AccumulateRange(d.table->partition(grid[m].partition), d,
                           &partials[m], grid[m].begin, grid[m].end, ctx,
                           /*use_failpoint=*/false, &scratch, &compact,
                           &keep);
  };
  if (n == 1 || pool == nullptr) {
    for (size_t m = 0; m < n; ++m) NLQ_RETURN_IF_ERROR(drain_one(m));
  } else {
    NLQ_RETURN_IF_ERROR(pool->ParallelFor(n, drain_one, ctx));
  }
  for (size_t m = 1; m < n; ++m) {
    NLQ_RETURN_IF_ERROR(MergePartial(*d.specs, &partials[0], &partials[m]));
  }
  return FinalizePartial(*d.specs, partials[0]);
}

StatusOr<Row> ViewRegistry::Serve(const ViewDescriptor& d, ThreadPool* pool,
                                  const QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
  const std::string key = KeyOf(d);

  auto it = views_.find(key);
  if (it != views_.end() && !EntryCurrent(*it->second, d)) {
    views_.erase(it);
    it = views_.end();
  }
  const bool seeded = it == views_.end();
  if (seeded) {
    auto entry = std::make_unique<Entry>();
    entry->table = d.table;
    entry->table_name = d.table_name;
    const size_t parts = d.table->num_partitions();
    entry->epochs.resize(parts);
    entry->watermarks.assign(parts, 0);
    entry->partials.resize(parts);
    for (size_t p = 0; p < parts; ++p) {
      entry->epochs[p] = d.table->partition(p).mutation_epoch();
    }
    it = views_.emplace(key, std::move(entry)).first;
  }
  it->second->last_served = ++lru_tick_;

  uint64_t delta_rows = 0;
  Status status =
      AccumulateDeltas(it->second.get(), d, pool, ctx, &delta_rows);
  StatusOr<Row> row = status.ok() ? MergeAndFinalize(*it->second, d)
                                  : StatusOr<Row>(status);
  if (!row.ok()) {
    // A half-applied delta leaves the stored partials unusable either
    // way: drop the entry. Cancellation/deadline unwind the statement;
    // anything else (injected view_maintenance fault, exhausted view
    // memory, decode error) degrades to a registry-free full rescan —
    // a slower statement, never a wrong one.
    views_.erase(it);
    const StatusCode code = row.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      return row.status();
    }
    if (stats != nullptr) {
      stats->view_misses.fetch_add(1, std::memory_order_relaxed);
      stats->view_rebuilds.fetch_add(1, std::memory_order_relaxed);
    }
    return RescanWithoutView(d, pool, ctx);
  }

  if (stats != nullptr) {
    if (seeded) {
      stats->view_misses.fetch_add(1, std::memory_order_relaxed);
      stats->view_rebuilds.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats->view_hits.fetch_add(1, std::memory_order_relaxed);
      stats->view_delta_rows.fetch_add(delta_rows,
                                       std::memory_order_relaxed);
    }
  }
  if (seeded) EvictIfNeeded();
  return row;
}

void ViewRegistry::InvalidateTable(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->second->table_name == table_name) {
      it = views_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t ViewRegistry::num_views() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

void ViewRegistry::EvictIfNeeded() {
  while (views_.size() > max_views_) {
    auto victim = views_.begin();
    for (auto it = views_.begin(); it != views_.end(); ++it) {
      if (it->second->last_served < victim->second->last_served) victim = it;
    }
    views_.erase(victim);
  }
}

}  // namespace nlq::engine::exec
