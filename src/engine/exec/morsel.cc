#include "engine/exec/morsel.h"

namespace nlq::engine::exec {

std::vector<Morsel> BuildMorselGrid(const storage::PartitionedTable& table,
                                    uint64_t morsel_rows) {
  std::vector<Morsel> grid;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    const uint64_t rows = table.partition(p).num_rows();
    if (rows == 0) continue;
    if (morsel_rows == 0) {
      grid.push_back({p, 0, rows});
      continue;
    }
    for (uint64_t begin = 0; begin < rows; begin += morsel_rows) {
      const uint64_t end =
          begin + morsel_rows < rows ? begin + morsel_rows : rows;
      grid.push_back({p, begin, end});
    }
  }
  if (grid.empty()) grid.push_back({0, 0, 0});
  return grid;
}

}  // namespace nlq::engine::exec
