#ifndef NLQ_ENGINE_EXEC_EXECUTOR_H_
#define NLQ_ENGINE_EXEC_EXECUTOR_H_

#include "common/status.h"
#include "engine/exec/planner.h"
#include "engine/result_set.h"

namespace nlq::engine::exec {

/// Runs a physical plan to completion: pulls batches from the root's
/// single output stream and materializes them into a ResultSet with
/// the plan's output schema.
StatusOr<ResultSet> ExecutePlan(const PhysicalPlan& plan);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_EXECUTOR_H_
