#ifndef NLQ_ENGINE_EXEC_EXECUTOR_H_
#define NLQ_ENGINE_EXEC_EXECUTOR_H_

#include "common/query_context.h"
#include "common/status.h"
#include "engine/exec/planner.h"
#include "engine/result_set.h"

namespace nlq::engine::exec {

/// Runs a physical plan to completion: pulls batches from the root's
/// single output stream and materializes them into a ResultSet with
/// the plan's output schema. When `ctx` is non-null it is polled at
/// every result batch (final cancellation point of the statement) and
/// result rows are charged against the query's memory budget.
StatusOr<ResultSet> ExecutePlan(const PhysicalPlan& plan,
                                const QueryContext* ctx = nullptr);

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_EXECUTOR_H_
