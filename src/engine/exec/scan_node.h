#ifndef NLQ_ENGINE_EXEC_SCAN_NODE_H_
#define NLQ_ENGINE_EXEC_SCAN_NODE_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/exec/morsel.h"
#include "engine/exec/plan.h"
#include "storage/partitioned_table.h"

namespace nlq::engine::exec {

/// Leaf: batched scan over a hash-partitioned table, one stream per
/// *morsel* — a fixed-size row range of one partition. The morsel grid
/// is built from the partition layout and `morsel_rows` alone (never
/// the thread count), so a skewed partition fans out into many
/// independently claimable streams and downstream stream-order merges
/// stay deterministic whatever pool drains them. `morsel_rows == 0`
/// degrades to one stream per partition (the pre-morsel per-AMP scan).
class ParallelScanNode : public PlanNode {
 public:
  ParallelScanNode(const storage::PartitionedTable* table,
                   std::string table_name, size_t batch_capacity,
                   uint64_t morsel_rows = kDefaultMorselRows,
                   const QueryContext* ctx = nullptr);

  const char* name() const override { return "ParallelScan"; }
  std::string annotation() const override;
  size_t output_width() const override;
  size_t num_streams() const override { return grid_.size(); }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  const storage::PartitionedTable* table_;
  std::string table_name_;
  size_t batch_capacity_;
  uint64_t morsel_rows_;
  const QueryContext* ctx_;
  std::vector<Morsel> grid_;
};

/// Leaf for FROM-less queries: one stream yielding `num_rows` empty
/// (zero-width) rows — one for `SELECT 1+1`, zero under aggregation
/// (a global aggregate over no input still finalizes one group).
class ConstantInputNode : public PlanNode {
 public:
  explicit ConstantInputNode(size_t num_rows);

  const char* name() const override { return "ConstantInput"; }
  std::string annotation() const override { return "no FROM"; }
  size_t output_width() const override { return 0; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  size_t num_rows_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_SCAN_NODE_H_
