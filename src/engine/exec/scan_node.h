#ifndef NLQ_ENGINE_EXEC_SCAN_NODE_H_
#define NLQ_ENGINE_EXEC_SCAN_NODE_H_

#include <string>

#include "engine/exec/plan.h"
#include "storage/partitioned_table.h"

namespace nlq::engine::exec {

/// Leaf: batched scan over a hash-partitioned table, one stream per
/// partition (the per-AMP parallel scan of the paper's Teradata
/// deployment). Each stream decodes a page's worth of rows per pull
/// via the storage layer's BatchScanner.
class ParallelScanNode : public PlanNode {
 public:
  ParallelScanNode(const storage::PartitionedTable* table,
                   std::string table_name, size_t batch_capacity);

  const char* name() const override { return "ParallelScan"; }
  std::string annotation() const override;
  size_t output_width() const override;
  size_t num_streams() const override;
  StatusOr<ExecStreamPtr> OpenStream(size_t s) const override;

 private:
  const storage::PartitionedTable* table_;
  std::string table_name_;
  size_t batch_capacity_;
};

/// Leaf for FROM-less queries: one stream yielding `num_rows` empty
/// (zero-width) rows — one for `SELECT 1+1`, zero under aggregation
/// (a global aggregate over no input still finalizes one group).
class ConstantInputNode : public PlanNode {
 public:
  explicit ConstantInputNode(size_t num_rows);

  const char* name() const override { return "ConstantInput"; }
  std::string annotation() const override { return "no FROM"; }
  size_t output_width() const override { return 0; }
  size_t num_streams() const override { return 1; }
  StatusOr<ExecStreamPtr> OpenStream(size_t s) const override;

 private:
  size_t num_rows_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_SCAN_NODE_H_
