#include "engine/exec/filter_node.h"

#include <utility>

#include "common/metrics.h"
#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;

class FilterStream : public ExecStream {
 public:
  FilterStream(ExecStreamPtr input, const BoundExpr* predicate,
               const CompiledExpr* compiled, const QueryContext* ctx)
      : input_(std::move(input)),
        predicate_(predicate),
        compiled_(compiled),
        ctx_(ctx) {}

  StatusOr<bool> Next(RowBatch* out) override {
    // Pull child batches directly into `out` and compact survivors in
    // place until at least one row passes (or the input is drained).
    for (;;) {
      NLQ_ASSIGN_OR_RETURN(const bool more, input_->Next(out));
      if (!more) return false;
      const size_t n = out->size();
      keep_.assign(n, 1);
      if (compiled_ != nullptr) {
        vm_.EvalRows(*compiled_, out->rows(), n);
        vm_.AndResultIntoKeep(*compiled_, n, keep_.data());
        if (ctx_ != nullptr && ctx_->stats() != nullptr) {
          ctx_->stats()->rows_vectorized.fetch_add(n,
                                                   std::memory_order_relaxed);
        }
      } else {
        verdicts_.resize(n);
        Status error;
        predicate_->EvalBatch(out->rows(), n, &error, verdicts_.data());
        NLQ_RETURN_IF_ERROR(error);
        for (size_t i = 0; i < n; ++i) {
          const Datum& v = verdicts_[i];
          if (v.is_null() || v.AsDouble() == 0.0) keep_[i] = 0;
        }
      }
      size_t kept = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!keep_[i]) continue;
        if (kept != i) std::swap(out->row(kept), out->row(i));
        ++kept;
      }
      out->Truncate(kept);
      if (kept > 0) return true;
    }
  }

 private:
  ExecStreamPtr input_;
  const BoundExpr* predicate_;
  const CompiledExpr* compiled_;
  const QueryContext* ctx_;
  std::vector<Datum> verdicts_;
  std::vector<uint8_t> keep_;
  ExprVM vm_;
};

}  // namespace

FilterNode::FilterNode(PlanNodePtr child, BoundExprPtr predicate,
                       std::vector<std::string> conjunct_text,
                       CompiledExprPtr compiled, const QueryContext* ctx)
    : PlanNode(std::move(child)),
      predicate_(std::move(predicate)),
      conjunct_text_(std::move(conjunct_text)),
      compiled_(std::move(compiled)),
      ctx_(ctx) {}

std::string FilterNode::annotation() const {
  std::string out;
  for (size_t i = 0; i < conjunct_text_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjunct_text_[i];
  }
  if (compiled_ != nullptr) {
    out += StringPrintf("; compiled, %zu op(s)", compiled_->num_instructions());
  }
  return out;
}

StatusOr<ExecStreamPtr> FilterNode::OpenStreamImpl(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr input, child_->OpenStream(s));
  return ExecStreamPtr(new FilterStream(std::move(input), predicate_.get(),
                                        compiled_.get(), ctx_));
}

}  // namespace nlq::engine::exec
