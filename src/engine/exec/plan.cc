#include "engine/exec/plan.h"

#include <chrono>
#include <utility>

#include "common/strings.h"

namespace nlq::engine::exec {
namespace {

/// Decorator around an operator's real cursor that charges rows,
/// batches and time spent inside Next() to the operator's stats sink.
/// Relaxed atomics: sinks are shared by the node's parallel streams.
class InstrumentedStream : public ExecStream {
 public:
  InstrumentedStream(ExecStreamPtr inner, OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  StatusOr<bool> Next(RowBatch* out) override {
    const auto start = std::chrono::steady_clock::now();
    StatusOr<bool> result = inner_->Next(out);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    stats_->time_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
    if (result.ok() && result.value()) {
      stats_->rows_out.fetch_add(out->size(), std::memory_order_relaxed);
      stats_->batches_out.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

 private:
  ExecStreamPtr inner_;
  OperatorStats* stats_;
};

/// Span-path twin of InstrumentedStream: counts the rows each span
/// batch carries (post-filter, so "rows_out" shows selectivity),
/// batches, and time inside Next().
class InstrumentedColumnStream : public ColumnStream {
 public:
  InstrumentedColumnStream(ColumnStreamPtr inner, OperatorStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  StatusOr<bool> Next(ColumnSpanBatch* out) override {
    const auto start = std::chrono::steady_clock::now();
    StatusOr<bool> result = inner_->Next(out);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    stats_->time_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
    if (result.ok() && result.value()) {
      stats_->rows_out.fetch_add(out->rows, std::memory_order_relaxed);
      stats_->batches_out.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

 private:
  ColumnStreamPtr inner_;
  OperatorStats* stats_;
};

void AppendMillis(uint64_t nanos, std::string* out) {
  *out += StringPrintf("%.3fms", static_cast<double>(nanos) / 1e6);
}

}  // namespace

StatusOr<ExecStreamPtr> PlanNode::OpenStream(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ExecStreamPtr stream, OpenStreamImpl(s));
  if (stats_ == nullptr) return stream;
  return ExecStreamPtr(
      std::make_unique<InstrumentedStream>(std::move(stream), stats_));
}

StatusOr<ColumnStreamPtr> PlanNode::OpenColumnStream(size_t s) const {
  NLQ_ASSIGN_OR_RETURN(ColumnStreamPtr stream, OpenColumnStreamImpl(s));
  if (stats_ == nullptr) return stream;
  return ColumnStreamPtr(
      std::make_unique<InstrumentedColumnStream>(std::move(stream), stats_));
}

StatusOr<ColumnStreamPtr> PlanNode::OpenColumnStreamImpl(size_t) const {
  return Status::Internal(std::string(name()) +
                          " produces rows, not column spans");
}

void AttachQueryStats(PlanNode* root, QueryStats* stats) {
  size_t depth = 0;
  for (PlanNode* node = root; node != nullptr;
       node = node->child_.get(), ++depth) {
    node->stats_ = stats == nullptr
                       ? nullptr
                       : stats->AddOperator(node->name(), node->annotation(),
                                            depth);
  }
}

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  size_t depth = 0;
  for (const PlanNode* node = &root; node != nullptr;
       node = node->child(), ++depth) {
    if (depth > 0) {
      out.append(3 * (depth - 1), ' ');
      out += "└─ ";
    }
    out += node->name();
    const std::string ann = node->annotation();
    if (!ann.empty()) {
      out += " (";
      out += ann;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

std::string RenderAnalyzedPlan(const QueryStatsSnapshot& snapshot) {
  std::string out;
  for (size_t i = 0; i < snapshot.operators.size(); ++i) {
    const OperatorStatsSnapshot& op = snapshot.operators[i];
    if (op.depth > 0) {
      out.append(3 * (op.depth - 1), ' ');
      out += "└─ ";
    }
    out += op.name;
    if (!op.annotation.empty()) {
      out += " (";
      out += op.annotation;
      out += ")";
    }
    // Self-time subtracts the next operator in the chain (plans are
    // linear, so operators[i + 1] is always i's only input). Clamped:
    // with parallel streams both numbers are sums over streams and the
    // child can legitimately accumulate more than the parent saw.
    const uint64_t child_ns = i + 1 < snapshot.operators.size()
                                  ? snapshot.operators[i + 1].time_ns
                                  : 0;
    const uint64_t self_ns =
        op.time_ns > child_ns ? op.time_ns - child_ns : 0;
    out += StringPrintf(" [rows=%llu batches=%llu time=",
                        static_cast<unsigned long long>(op.rows_out),
                        static_cast<unsigned long long>(op.batches_out));
    AppendMillis(op.time_ns, &out);
    out += " self=";
    AppendMillis(self_ns, &out);
    out += "]\n";
  }
  out += StringPrintf(
      "Totals: rows=%llu pages_decoded=%llu cache(hits=%llu misses=%llu "
      "fallbacks=%llu) time=",
      static_cast<unsigned long long>(snapshot.rows_returned),
      static_cast<unsigned long long>(snapshot.pages_decoded),
      static_cast<unsigned long long>(snapshot.column_cache_hits),
      static_cast<unsigned long long>(snapshot.column_cache_misses),
      static_cast<unsigned long long>(snapshot.column_cache_fallbacks));
  AppendMillis(snapshot.wall_time_ns, &out);
  out += "\n";
  // When the decoded-column cache fell back, say who hit the budget and
  // why — the counters alone do not name the consumer.
  if (!snapshot.column_cache_note.empty()) {
    out += "cache=fallback (";
    out += snapshot.column_cache_note;
    out += ")\n";
  }
  return out;
}

std::string RedactTimings(std::string_view rendered) {
  // Replaces the value of every `time=<num>ms` / `self=<num>ms` pair
  // with `<T>`. Hand-rolled so the goldens do not depend on <regex>.
  auto is_number_char = [](char c) {
    return (c >= '0' && c <= '9') || c == '.';
  };
  std::string out;
  out.reserve(rendered.size());
  size_t i = 0;
  while (i < rendered.size()) {
    size_t key_len = 0;
    if (rendered.substr(i).starts_with("time=")) {
      key_len = 5;
    } else if (rendered.substr(i).starts_with("self=")) {
      key_len = 5;
    }
    if (key_len > 0) {
      size_t j = i + key_len;
      const size_t num_begin = j;
      while (j < rendered.size() && is_number_char(rendered[j])) ++j;
      if (j > num_begin && rendered.substr(j).starts_with("ms")) {
        out += rendered.substr(i, key_len);
        out += "<T>";
        i = j + 2;
        continue;
      }
    }
    out += rendered[i++];
  }
  return out;
}

}  // namespace nlq::engine::exec
