#include "engine/exec/plan.h"

namespace nlq::engine::exec {

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  size_t depth = 0;
  for (const PlanNode* node = &root; node != nullptr;
       node = node->child(), ++depth) {
    if (depth > 0) {
      out.append(3 * (depth - 1), ' ');
      out += "└─ ";
    }
    out += node->name();
    const std::string ann = node->annotation();
    if (!ann.empty()) {
      out += " (";
      out += ann;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace nlq::engine::exec
