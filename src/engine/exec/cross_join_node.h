#ifndef NLQ_ENGINE_EXEC_CROSS_JOIN_NODE_H_
#define NLQ_ENGINE_EXEC_CROSS_JOIN_NODE_H_

#include <string>
#include <vector>

#include "engine/exec/plan.h"
#include "storage/value.h"

namespace nlq::engine::exec {

/// Cross product of the child stream (probe side) with one
/// materialized small table (build side) — the paper's scoring
/// pattern joins the data set X with tiny k-row model tables. The
/// build rows are pre-filtered at plan time by WHERE-conjunct
/// pushdown (the §3.6 join-optimization analogue); `pushed_text`
/// records those conjuncts for EXPLAIN.
///
/// Output rows are `child_row ++ build_row`; streams follow the
/// child's fan-out.
class CrossJoinNode : public PlanNode {
 public:
  CrossJoinNode(PlanNodePtr child, std::vector<storage::Row> build_rows,
                size_t build_width, std::string display_name,
                std::vector<std::string> pushed_text);

  const char* name() const override { return "CrossJoin"; }
  std::string annotation() const override;
  size_t output_width() const override;
  StatusOr<ExecStreamPtr> OpenStreamImpl(size_t s) const override;

 private:
  std::vector<storage::Row> build_rows_;
  size_t build_width_;
  std::string display_name_;  // "M AS m1"
  std::vector<std::string> pushed_text_;
};

}  // namespace nlq::engine::exec

#endif  // NLQ_ENGINE_EXEC_CROSS_JOIN_NODE_H_
