#ifndef NLQ_ENGINE_PERSISTENCE_H_
#define NLQ_ENGINE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace nlq::engine {

/// Persists every table of `db` under `directory` (created if
/// missing): a `manifest.txt` describing names, partition counts and
/// schemas, plus one page file per partition written through
/// storage::DiskManager. Overwrites a previous snapshot in place.
Status SaveDatabase(const Database& db, const std::string& directory);

/// Loads a snapshot produced by SaveDatabase into `db`. Tables that
/// already exist under the same name are replaced. Partition counts
/// are restored from the manifest (not the database default), so
/// statistics recomputed after a reload match the original exactly.
Status LoadDatabase(Database* db, const std::string& directory);

/// Serializes a schema as "name:TYPE,name:TYPE,..." (used by the
/// manifest; exposed for tests).
std::string SerializeSchema(const storage::Schema& schema);

/// Parses SerializeSchema output.
StatusOr<storage::Schema> DeserializeSchema(std::string_view text);

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_PERSISTENCE_H_
