#include "engine/persistence.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "storage/partitioned_table.h"

namespace nlq::engine {
namespace {

Status EnsureDirectory(const std::string& directory) {
  if (::mkdir(directory.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("cannot create directory '" + directory +
                         "': " + std::strerror(errno));
}

std::string PartitionPath(const std::string& directory,
                          const std::string& table, size_t partition) {
  return directory + "/" + table + "." + std::to_string(partition) +
         ".pages";
}

StatusOr<storage::DataType> TypeFromName(std::string_view name) {
  if (name == "DOUBLE") return storage::DataType::kDouble;
  if (name == "BIGINT") return storage::DataType::kInt64;
  if (name == "VARCHAR") return storage::DataType::kVarchar;
  return Status::ParseError("unknown type '" + std::string(name) +
                            "' in manifest");
}

}  // namespace

std::string SerializeSchema(const storage::Schema& schema) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += schema.column(c).name;
    out += ':';
    out += storage::DataTypeName(schema.column(c).type);
  }
  return out;
}

StatusOr<storage::Schema> DeserializeSchema(std::string_view text) {
  std::vector<storage::Column> columns;
  for (std::string_view field : SplitString(text, ',')) {
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("malformed schema entry '" +
                                std::string(field) + "'");
    }
    storage::Column column;
    column.name = std::string(field.substr(0, colon));
    NLQ_ASSIGN_OR_RETURN(column.type, TypeFromName(field.substr(colon + 1)));
    columns.push_back(std::move(column));
  }
  if (columns.empty()) {
    return Status::ParseError("manifest schema has no columns");
  }
  return storage::Schema(std::move(columns));
}

Status SaveDatabase(const Database& db, const std::string& directory) {
  NLQ_RETURN_IF_ERROR(EnsureDirectory(directory));
  std::ostringstream manifest;
  for (const std::string& name : db.catalog().TableNames()) {
    NLQ_ASSIGN_OR_RETURN(storage::PartitionedTable * table,
                         db.catalog().GetTable(name));
    manifest << name << '|' << table->num_partitions() << '|'
             << SerializeSchema(table->schema()) << '\n';
    for (size_t p = 0; p < table->num_partitions(); ++p) {
      NLQ_RETURN_IF_ERROR(
          table->partition(p).SaveToFile(PartitionPath(directory, name, p)));
    }
  }
  std::ofstream out(directory + "/manifest.txt", std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write manifest in '" + directory + "'");
  }
  out << manifest.str();
  out.close();
  if (!out) {
    return Status::IOError("short write to manifest in '" + directory + "'");
  }
  return Status::OK();
}

Status LoadDatabase(Database* db, const std::string& directory) {
  std::ifstream manifest(directory + "/manifest.txt");
  if (!manifest) {
    return Status::IOError("cannot open manifest in '" + directory + "'");
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const std::vector<std::string_view> fields = SplitString(line, '|');
    if (fields.size() != 3) {
      return Status::ParseError("malformed manifest line: " + line);
    }
    const std::string name(fields[0]);
    NLQ_ASSIGN_OR_RETURN(int64_t partitions, ParseInt64(fields[1]));
    if (partitions < 1 || partitions > 4096) {
      return Status::ParseError("implausible partition count in manifest");
    }
    NLQ_ASSIGN_OR_RETURN(storage::Schema schema,
                         DeserializeSchema(fields[2]));

    if (db->catalog().HasTable(name)) {
      NLQ_RETURN_IF_ERROR(db->catalog().DropTable(name));
    }
    NLQ_ASSIGN_OR_RETURN(
        storage::PartitionedTable * table,
        db->catalog().CreateTable(name, std::move(schema),
                                  static_cast<size_t>(partitions)));
    for (size_t p = 0; p < static_cast<size_t>(partitions); ++p) {
      NLQ_RETURN_IF_ERROR(table->partition(p).LoadFromFile(
          PartitionPath(directory, name, p)));
    }
  }
  return Status::OK();
}

}  // namespace nlq::engine
