#include "engine/expr.h"

#include <cmath>

#include "common/strings.h"
#include "engine/exec/bytecode.h"

namespace nlq::engine {

using storage::DataType;
using storage::Datum;

namespace {

// ---------------------------------------------------------------------------
// Bound node implementations
// ---------------------------------------------------------------------------

class LiteralNode : public BoundExpr {
 public:
  explicit LiteralNode(Datum value) : value_(std::move(value)) {}
  Datum Eval(const EvalContext&) const override { return value_; }
  void EvalBatch(const storage::Row*, size_t count, Status*,
                 Datum* out) const override {
    for (size_t i = 0; i < count; ++i) out[i] = value_;
  }
  DataType result_type() const override { return value_.type(); }
  bool AsLiteralValue(Datum* value) const override {
    *value = value_;
    return true;
  }
  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    return b->Constant(value_);
  }

 private:
  Datum value_;
};

class InputRefNode : public BoundExpr {
 public:
  InputRefNode(size_t slot, DataType type) : slot_(slot), type_(type) {}
  Datum Eval(const EvalContext& ctx) const override {
    return (*ctx.input)[slot_];
  }
  void EvalBatch(const storage::Row* rows, size_t count, Status*,
                 Datum* out) const override {
    for (size_t i = 0; i < count; ++i) out[i] = rows[i][slot_];
  }
  DataType result_type() const override { return type_; }
  bool AsInputRef(size_t* slot) const override {
    *slot = slot_;
    return true;
  }
  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    return b->LoadColumn(slot_, type_);
  }

 private:
  size_t slot_;
  DataType type_;
};

class KeyRefNode : public BoundExpr {
 public:
  KeyRefNode(size_t idx, DataType type) : idx_(idx), type_(type) {}
  Datum Eval(const EvalContext& ctx) const override {
    return (*ctx.keys)[idx_];
  }
  DataType result_type() const override { return type_; }

 private:
  size_t idx_;
  DataType type_;
};

class AggRefNode : public BoundExpr {
 public:
  AggRefNode(size_t idx, DataType type) : idx_(idx), type_(type) {}
  Datum Eval(const EvalContext& ctx) const override {
    return (*ctx.aggs)[idx_];
  }
  DataType result_type() const override { return type_; }

 private:
  size_t idx_;
  DataType type_;
};

// SQL boolean helpers: we represent booleans as BIGINT 0/1 with NULL
// for "unknown" (three-valued logic).
Datum BoolDatum(bool b) { return Datum::Int64(b ? 1 : 0); }

bool IsTrue(const Datum& d) { return !d.is_null() && d.AsDouble() != 0.0; }
bool IsFalse(const Datum& d) { return !d.is_null() && d.AsDouble() == 0.0; }

class UnaryNode : public BoundExpr {
 public:
  UnaryNode(UnaryOp op, BoundExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  Datum Eval(const EvalContext& ctx) const override {
    return Apply(operand_->Eval(ctx));
  }

  void EvalBatch(const storage::Row* rows, size_t count, Status* error,
                 Datum* out) const override {
    operand_->EvalBatch(rows, count, error, out);
    for (size_t i = 0; i < count; ++i) out[i] = Apply(std::move(out[i]));
  }

  DataType result_type() const override {
    if (op_ == UnaryOp::kNot) return DataType::kInt64;
    return operand_->result_type();
  }

  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    const int v = operand_->EmitBytecode(b);
    if (v < 0) return -1;
    return b->Unary(op_, v);
  }

 private:
  Datum Apply(Datum v) const {
    if (v.is_null()) return Datum::Null(result_type());
    if (op_ == UnaryOp::kNegate) {
      if (v.type() == DataType::kInt64) return Datum::Int64(-v.int_value());
      return Datum::Double(-v.AsDouble());
    }
    return BoolDatum(!IsTrue(v));
  }

  UnaryOp op_;
  BoundExprPtr operand_;
};

class BinaryNode : public BoundExpr {
 public:
  BinaryNode(BinaryOp op, BoundExprPtr left, BoundExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {
    both_int_ = left_->result_type() == DataType::kInt64 &&
                right_->result_type() == DataType::kInt64;
  }

  Datum Eval(const EvalContext& ctx) const override {
    // AND/OR need three-valued logic with short-circuiting.
    if (op_ == BinaryOp::kAnd) {
      const Datum l = left_->Eval(ctx);
      if (IsFalse(l)) return BoolDatum(false);
      const Datum r = right_->Eval(ctx);
      if (IsFalse(r)) return BoolDatum(false);
      if (l.is_null() || r.is_null()) return Datum::Null(DataType::kInt64);
      return BoolDatum(true);
    }
    if (op_ == BinaryOp::kOr) {
      const Datum l = left_->Eval(ctx);
      if (IsTrue(l)) return BoolDatum(true);
      const Datum r = right_->Eval(ctx);
      if (IsTrue(r)) return BoolDatum(true);
      if (l.is_null() || r.is_null()) return Datum::Null(DataType::kInt64);
      return BoolDatum(false);
    }

    return Combine(left_->Eval(ctx), right_->Eval(ctx));
  }

  void EvalBatch(const storage::Row* rows, size_t count, Status* error,
                 Datum* out) const override {
    // AND/OR keep the row-at-a-time path: their short-circuit order
    // decides which operand errors surface.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      BoundExpr::EvalBatch(rows, count, error, out);
      return;
    }
    // Children evaluate whole columns (one virtual dispatch per batch
    // instead of two per row); the operator fold runs as a tight loop.
    std::vector<Datum> lhs(count);
    left_->EvalBatch(rows, count, error, lhs.data());
    right_->EvalBatch(rows, count, error, out);
    for (size_t i = 0; i < count; ++i) {
      out[i] = Combine(lhs[i], out[i]);
    }
  }

  DataType result_type() const override {
    switch (op_) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod:
        return both_int_ ? DataType::kInt64 : DataType::kDouble;
      case BinaryOp::kDiv:
        return DataType::kDouble;
      default:
        return DataType::kInt64;  // booleans
    }
  }

  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    const int l = left_->EmitBytecode(b);
    if (l < 0) return -1;
    const int r = right_->EmitBytecode(b);
    if (r < 0) return -1;
    return b->Binary(op_, l, r);
  }

 private:
  Datum Combine(const Datum& l, const Datum& r) const {
    if (l.is_null() || r.is_null()) return Datum::Null(result_type());
    switch (op_) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod:
        if (both_int_) return EvalIntArithmetic(l.int_value(), r.int_value());
        return EvalDoubleArithmetic(l.AsDouble(), r.AsDouble());
      case BinaryOp::kDiv: {
        const double denom = r.AsDouble();
        if (denom == 0.0) return Datum::Null(DataType::kDouble);
        return Datum::Double(l.AsDouble() / denom);
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return EvalComparison(l, r);
      default:
        return Datum::Null(DataType::kDouble);
    }
  }

  Datum EvalIntArithmetic(int64_t a, int64_t b) const {
    switch (op_) {
      case BinaryOp::kAdd: return Datum::Int64(a + b);
      case BinaryOp::kSub: return Datum::Int64(a - b);
      case BinaryOp::kMul: return Datum::Int64(a * b);
      case BinaryOp::kMod:
        if (b == 0) return Datum::Null(DataType::kInt64);
        return Datum::Int64(a % b);
      default: return Datum::Null(DataType::kInt64);
    }
  }

  Datum EvalDoubleArithmetic(double a, double b) const {
    switch (op_) {
      case BinaryOp::kAdd: return Datum::Double(a + b);
      case BinaryOp::kSub: return Datum::Double(a - b);
      case BinaryOp::kMul: return Datum::Double(a * b);
      case BinaryOp::kMod:
        if (b == 0.0) return Datum::Null(DataType::kDouble);
        return Datum::Double(std::fmod(a, b));
      default: return Datum::Null(DataType::kDouble);
    }
  }

  Datum EvalComparison(const Datum& l, const Datum& r) const {
    int cmp;
    if (l.type() == DataType::kVarchar && r.type() == DataType::kVarchar) {
      cmp = l.string_value().compare(r.string_value());
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else if (l.type() == DataType::kVarchar ||
               r.type() == DataType::kVarchar) {
      return Datum::Null(DataType::kInt64);  // incomparable types
    } else {
      const double a = l.AsDouble();
      const double b = r.AsDouble();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
    switch (op_) {
      case BinaryOp::kEq: return BoolDatum(cmp == 0);
      case BinaryOp::kNe: return BoolDatum(cmp != 0);
      case BinaryOp::kLt: return BoolDatum(cmp < 0);
      case BinaryOp::kLe: return BoolDatum(cmp <= 0);
      case BinaryOp::kGt: return BoolDatum(cmp > 0);
      case BinaryOp::kGe: return BoolDatum(cmp >= 0);
      default: return Datum::Null(DataType::kInt64);
    }
  }

  BinaryOp op_;
  BoundExprPtr left_;
  BoundExprPtr right_;
  bool both_int_;
};

class IsNullNode : public BoundExpr {
 public:
  IsNullNode(BoundExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}
  Datum Eval(const EvalContext& ctx) const override {
    const bool is_null = operand_->Eval(ctx).is_null();
    return BoolDatum(negated_ ? !is_null : is_null);
  }
  void EvalBatch(const storage::Row* rows, size_t count, Status* error,
                 Datum* out) const override {
    operand_->EvalBatch(rows, count, error, out);
    for (size_t i = 0; i < count; ++i) {
      const bool is_null = out[i].is_null();
      out[i] = BoolDatum(negated_ ? !is_null : is_null);
    }
  }
  DataType result_type() const override { return DataType::kInt64; }

  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    const int v = operand_->EmitBytecode(b);
    if (v < 0) return -1;
    return b->IsNull(v, negated_);
  }

 private:
  BoundExprPtr operand_;
  bool negated_;
};

class CaseNode : public BoundExpr {
 public:
  CaseNode(std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches,
           BoundExprPtr else_expr)
      : branches_(std::move(branches)), else_expr_(std::move(else_expr)) {}

  Datum Eval(const EvalContext& ctx) const override {
    for (const auto& [cond, result] : branches_) {
      if (IsTrue(cond->Eval(ctx))) return result->Eval(ctx);
    }
    if (else_expr_) return else_expr_->Eval(ctx);
    return Datum::Null(result_type());
  }

  DataType result_type() const override {
    return branches_.front().second->result_type();
  }

  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    std::vector<std::pair<exec::BytecodeBuilder::ValueId,
                          exec::BytecodeBuilder::ValueId>>
        branches;
    branches.reserve(branches_.size());
    for (const auto& [cond, result] : branches_) {
      const int c = cond->EmitBytecode(b);
      if (c < 0) return -1;
      const int v = result->EmitBytecode(b);
      if (v < 0) return -1;
      branches.emplace_back(c, v);
    }
    int else_value = exec::BytecodeBuilder::kInvalidValue;
    if (else_expr_) {
      else_value = else_expr_->EmitBytecode(b);
      if (else_value < 0) return -1;
    }
    return b->Case(branches, else_value, result_type());
  }

 private:
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches_;
  BoundExprPtr else_expr_;
};

// ---------------------------------------------------------------------------
// Builtin scalar functions
// ---------------------------------------------------------------------------

enum class BuiltinFn {
  kSqrt, kAbs, kExp, kLn, kPower, kMod, kFloor, kCeil, kRound,
  kLeast, kGreatest, kCoalesce,
};

struct BuiltinEntry {
  const char* name;
  BuiltinFn fn;
  int min_args;
  int max_args;  // -1 = unbounded
};

constexpr BuiltinEntry kBuiltins[] = {
    {"sqrt", BuiltinFn::kSqrt, 1, 1},
    {"abs", BuiltinFn::kAbs, 1, 1},
    {"exp", BuiltinFn::kExp, 1, 1},
    {"ln", BuiltinFn::kLn, 1, 1},
    {"log", BuiltinFn::kLn, 1, 1},
    {"power", BuiltinFn::kPower, 2, 2},
    {"pow", BuiltinFn::kPower, 2, 2},
    {"mod", BuiltinFn::kMod, 2, 2},
    {"floor", BuiltinFn::kFloor, 1, 1},
    {"ceil", BuiltinFn::kCeil, 1, 1},
    {"round", BuiltinFn::kRound, 1, 1},
    {"least", BuiltinFn::kLeast, 1, -1},
    {"greatest", BuiltinFn::kGreatest, 1, -1},
    {"coalesce", BuiltinFn::kCoalesce, 1, -1},
};

const BuiltinEntry* FindBuiltin(const std::string& lower_name) {
  for (const auto& e : kBuiltins) {
    if (lower_name == e.name) return &e;
  }
  return nullptr;
}

class BuiltinFnNode : public BoundExpr {
 public:
  BuiltinFnNode(BuiltinFn fn, std::vector<BoundExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}

  Datum Eval(const EvalContext& ctx) const override {
    switch (fn_) {
      case BuiltinFn::kCoalesce: {
        for (const auto& a : args_) {
          Datum v = a->Eval(ctx);
          if (!v.is_null()) return v;
        }
        return Datum::Null(DataType::kDouble);
      }
      case BuiltinFn::kLeast:
      case BuiltinFn::kGreatest: {
        bool have = false;
        double best = 0.0;
        for (const auto& a : args_) {
          const Datum v = a->Eval(ctx);
          if (v.is_null()) return Datum::Null(DataType::kDouble);
          const double x = v.AsDouble();
          if (!have || (fn_ == BuiltinFn::kLeast ? x < best : x > best)) {
            best = x;
            have = true;
          }
        }
        return Datum::Double(best);
      }
      default:
        break;
    }
    const Datum a0 = args_[0]->Eval(ctx);
    if (a0.is_null()) return Datum::Null(DataType::kDouble);
    const double x = a0.AsDouble();
    switch (fn_) {
      case BuiltinFn::kSqrt:
        if (x < 0.0) return Datum::Null(DataType::kDouble);
        return Datum::Double(std::sqrt(x));
      case BuiltinFn::kAbs:
        return Datum::Double(std::fabs(x));
      case BuiltinFn::kExp:
        return Datum::Double(std::exp(x));
      case BuiltinFn::kLn:
        if (x <= 0.0) return Datum::Null(DataType::kDouble);
        return Datum::Double(std::log(x));
      case BuiltinFn::kFloor:
        return Datum::Double(std::floor(x));
      case BuiltinFn::kCeil:
        return Datum::Double(std::ceil(x));
      case BuiltinFn::kRound:
        return Datum::Double(std::round(x));
      case BuiltinFn::kPower:
      case BuiltinFn::kMod: {
        const Datum a1 = args_[1]->Eval(ctx);
        if (a1.is_null()) return Datum::Null(DataType::kDouble);
        const double y = a1.AsDouble();
        if (fn_ == BuiltinFn::kPower) return Datum::Double(std::pow(x, y));
        if (y == 0.0) return Datum::Null(DataType::kDouble);
        return Datum::Double(std::fmod(x, y));
      }
      default:
        return Datum::Null(DataType::kDouble);
    }
  }

  DataType result_type() const override { return DataType::kDouble; }

  int EmitBytecode(exec::BytecodeBuilder* b) const override {
    std::vector<exec::BytecodeBuilder::ValueId> args;
    args.reserve(args_.size());
    for (const auto& a : args_) {
      const int v = a->EmitBytecode(b);
      if (v < 0) return -1;
      args.push_back(v);
    }
    switch (fn_) {
      case BuiltinFn::kSqrt:
        return b->Call1(exec::ScalarFn1::kSqrt, args[0]);
      case BuiltinFn::kAbs:
        return b->Call1(exec::ScalarFn1::kAbs, args[0]);
      case BuiltinFn::kExp:
        return b->Call1(exec::ScalarFn1::kExp, args[0]);
      case BuiltinFn::kLn:
        return b->Call1(exec::ScalarFn1::kLn, args[0]);
      case BuiltinFn::kFloor:
        return b->Call1(exec::ScalarFn1::kFloor, args[0]);
      case BuiltinFn::kCeil:
        return b->Call1(exec::ScalarFn1::kCeil, args[0]);
      case BuiltinFn::kRound:
        return b->Call1(exec::ScalarFn1::kRound, args[0]);
      case BuiltinFn::kPower:
        return b->Power(args[0], args[1]);
      case BuiltinFn::kMod:
        return b->FMod(args[0], args[1]);
      case BuiltinFn::kLeast:
        return b->Least(args);
      case BuiltinFn::kGreatest:
        return b->Greatest(args);
      case BuiltinFn::kCoalesce:
        return b->Coalesce(args);
    }
    return -1;
  }

 private:
  BuiltinFn fn_;
  std::vector<BoundExprPtr> args_;
};

class ScalarUdfNode : public BoundExpr {
 public:
  ScalarUdfNode(const udf::ScalarUdf* udf, std::vector<BoundExprPtr> args)
      : udf_(udf), args_(std::move(args)) {}

  Datum Eval(const EvalContext& ctx) const override {
    std::vector<Datum> values(args_.size());
    for (size_t i = 0; i < args_.size(); ++i) values[i] = args_[i]->Eval(ctx);
    StatusOr<Datum> result = udf_->Invoke(values);
    if (!result.ok()) {
      if (ctx.error != nullptr && ctx.error->ok()) *ctx.error = result.status();
      return Datum::Null(udf_->return_type());
    }
    return std::move(result).value();
  }

  DataType result_type() const override { return udf_->return_type(); }

 private:
  const udf::ScalarUdf* udf_;
  std::vector<BoundExprPtr> args_;
};

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

bool IsBuiltinAggregateName(const std::string& lower) {
  return lower == "sum" || lower == "count" || lower == "min" ||
         lower == "max" || lower == "avg";
}

bool IsAggregateCall(const Expr& expr, const udf::UdfRegistry* registry) {
  if (expr.kind != ExprKind::kFunction) return false;
  if (IsBuiltinAggregateName(expr.function_name)) return true;
  return registry != nullptr &&
         registry->FindAggregate(expr.function_name) != nullptr;
}

/// Context shared by row-level binding and aggregate select binding.
struct AggBindState {
  const std::vector<const Expr*>* group_by = nullptr;
  std::vector<std::string> group_by_text;
  std::vector<BoundExprPtr>* key_exprs = nullptr;
  std::vector<AggregateSpec>* specs = nullptr;
  std::vector<DataType> key_types;
};

StatusOr<BoundExprPtr> Bind(const Expr& expr, const BindingScope& scope,
                            const udf::UdfRegistry* registry,
                            AggBindState* agg);

StatusOr<AggregateSpec> BindAggregateCall(const Expr& expr,
                                          const BindingScope& scope,
                                          const udf::UdfRegistry* registry) {
  AggregateSpec spec;
  const std::string& name = expr.function_name;
  const bool star_arg =
      expr.args.size() == 1 && expr.args[0]->kind == ExprKind::kStar;

  if (IsBuiltinAggregateName(name)) {
    if (name == "count" && star_arg) {
      spec.kind = AggregateSpec::Kind::kCountStar;
      spec.result_type = DataType::kInt64;
      return spec;
    }
    if (expr.args.size() != 1 || star_arg) {
      return Status::InvalidArgument("aggregate " + name +
                                     " takes exactly one argument");
    }
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr arg,
                         Bind(*expr.args[0], scope, registry, nullptr));
    if (name == "count") {
      spec.kind = AggregateSpec::Kind::kCount;
      spec.result_type = DataType::kInt64;
    } else if (name == "sum") {
      spec.kind = AggregateSpec::Kind::kSum;
      spec.result_type = DataType::kDouble;
    } else if (name == "avg") {
      spec.kind = AggregateSpec::Kind::kAvg;
      spec.result_type = DataType::kDouble;
    } else if (name == "min") {
      spec.kind = AggregateSpec::Kind::kMin;
      spec.result_type = arg->result_type();
    } else {
      spec.kind = AggregateSpec::Kind::kMax;
      spec.result_type = arg->result_type();
    }
    spec.args.push_back(std::move(arg));
    return spec;
  }

  const udf::AggregateUdf* udaf = registry->FindAggregate(name);
  NLQ_RETURN_IF_ERROR(udaf->CheckArity(expr.args.size()));
  spec.kind = AggregateSpec::Kind::kUdf;
  spec.udaf = udaf;
  spec.result_type = udaf->return_type();
  for (const auto& a : expr.args) {
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr arg, Bind(*a, scope, registry, nullptr));
    spec.args.push_back(std::move(arg));
  }
  return spec;
}

StatusOr<BoundExprPtr> Bind(const Expr& expr, const BindingScope& scope,
                            const udf::UdfRegistry* registry,
                            AggBindState* agg) {
  // In aggregate-select mode, any subexpression textually equal to a
  // GROUP BY expression becomes a key reference.
  if (agg != nullptr) {
    const std::string text = expr.ToString();
    for (size_t i = 0; i < agg->group_by_text.size(); ++i) {
      if (agg->group_by_text[i] == text) {
        return BoundExprPtr(new KeyRefNode(i, agg->key_types[i]));
      }
    }
    if (IsAggregateCall(expr, registry)) {
      NLQ_ASSIGN_OR_RETURN(AggregateSpec spec,
                           BindAggregateCall(expr, scope, registry));
      const size_t slot = agg->specs->size();
      const DataType type = spec.result_type;
      agg->specs->push_back(std::move(spec));
      return BoundExprPtr(new AggRefNode(slot, type));
    }
  } else if (IsAggregateCall(expr, registry)) {
    return Status::InvalidArgument(
        "aggregate function '" + expr.function_name +
        "' is not allowed in this context (WHERE / aggregate argument)");
  }

  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BoundExprPtr(new LiteralNode(expr.literal));
    case ExprKind::kColumnRef: {
      if (agg != nullptr) {
        return Status::InvalidArgument(
            "column '" + expr.ToString() +
            "' must appear in GROUP BY or inside an aggregate");
      }
      NLQ_ASSIGN_OR_RETURN(auto slot_type,
                           scope.Resolve(expr.table, expr.column));
      return BoundExprPtr(new InputRefNode(slot_type.first, slot_type.second));
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid in COUNT(*)");
    case ExprKind::kUnary: {
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           Bind(*expr.left, scope, registry, agg));
      return BoundExprPtr(new UnaryNode(expr.unary_op, std::move(operand)));
    }
    case ExprKind::kBinary: {
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr left,
                           Bind(*expr.left, scope, registry, agg));
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr right,
                           Bind(*expr.right, scope, registry, agg));
      return BoundExprPtr(
          new BinaryNode(expr.binary_op, std::move(left), std::move(right)));
    }
    case ExprKind::kFunction: {
      std::vector<BoundExprPtr> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        NLQ_ASSIGN_OR_RETURN(BoundExprPtr arg, Bind(*a, scope, registry, agg));
        args.push_back(std::move(arg));
      }
      if (const BuiltinEntry* builtin = FindBuiltin(expr.function_name)) {
        const int argc = static_cast<int>(args.size());
        if (argc < builtin->min_args ||
            (builtin->max_args >= 0 && argc > builtin->max_args)) {
          return Status::InvalidArgument("wrong number of arguments to " +
                                         expr.function_name + "()");
        }
        return BoundExprPtr(new BuiltinFnNode(builtin->fn, std::move(args)));
      }
      if (registry != nullptr) {
        if (const udf::ScalarUdf* udf =
                registry->FindScalar(expr.function_name)) {
          NLQ_RETURN_IF_ERROR(udf->CheckArity(args.size()));
          return BoundExprPtr(new ScalarUdfNode(udf, std::move(args)));
        }
      }
      return Status::NotFound("unknown function '" + expr.function_name + "'");
    }
    case ExprKind::kCase: {
      std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches;
      for (const auto& b : expr.branches) {
        NLQ_ASSIGN_OR_RETURN(BoundExprPtr cond,
                             Bind(*b.condition, scope, registry, agg));
        NLQ_ASSIGN_OR_RETURN(BoundExprPtr result,
                             Bind(*b.result, scope, registry, agg));
        branches.emplace_back(std::move(cond), std::move(result));
      }
      BoundExprPtr else_expr;
      if (expr.else_expr) {
        NLQ_ASSIGN_OR_RETURN(else_expr,
                             Bind(*expr.else_expr, scope, registry, agg));
      }
      return BoundExprPtr(
          new CaseNode(std::move(branches), std::move(else_expr)));
    }
    case ExprKind::kIsNull: {
      NLQ_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           Bind(*expr.left, scope, registry, agg));
      return BoundExprPtr(
          new IsNullNode(std::move(operand), expr.is_null_negated));
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

void BoundExpr::EvalBatch(const storage::Row* rows, size_t count,
                          Status* error, Datum* out) const {
  EvalContext ctx;
  ctx.error = error;
  for (size_t i = 0; i < count; ++i) {
    ctx.input = &rows[i];
    out[i] = Eval(ctx);
  }
}

// ---------------------------------------------------------------------------
// BindingScope
// ---------------------------------------------------------------------------

void BindingScope::AddTable(std::string alias, const storage::Schema* schema) {
  tables_.push_back({std::move(alias), schema, total_slots_});
  total_slots_ += schema->num_columns();
}

StatusOr<std::pair<size_t, DataType>> BindingScope::Resolve(
    const std::string& table, const std::string& column) const {
  bool found = false;
  std::pair<size_t, DataType> result{0, DataType::kDouble};
  for (const auto& entry : tables_) {
    if (!table.empty() && !EqualsIgnoreCase(entry.alias, table)) continue;
    const auto idx = entry.schema->ColumnIndex(column);
    if (!idx.ok()) continue;
    if (found) {
      return Status::InvalidArgument("ambiguous column reference '" + column +
                                     "'");
    }
    found = true;
    result = {entry.offset + idx.value(),
              entry.schema->column(idx.value()).type};
  }
  if (!found) {
    const std::string qualified =
        table.empty() ? column : table + "." + column;
    return Status::NotFound("unknown column '" + qualified + "'");
  }
  return result;
}

std::vector<storage::Column> BindingScope::AllColumns() const {
  std::vector<storage::Column> cols;
  cols.reserve(total_slots_);
  for (const auto& entry : tables_) {
    for (const auto& c : entry.schema->columns()) cols.push_back(c);
  }
  return cols;
}

// ---------------------------------------------------------------------------
// Public binding entry points
// ---------------------------------------------------------------------------

StatusOr<BoundExprPtr> BindRowExpr(const Expr& expr, const BindingScope& scope,
                                   const udf::UdfRegistry* registry) {
  return Bind(expr, scope, registry, nullptr);
}

BoundExprPtr MakeBoundInputRef(size_t slot, DataType type) {
  return BoundExprPtr(new InputRefNode(slot, type));
}

bool ContainsAggregate(const Expr& expr, const udf::UdfRegistry* registry) {
  if (IsAggregateCall(expr, registry)) return true;
  if (expr.left && ContainsAggregate(*expr.left, registry)) return true;
  if (expr.right && ContainsAggregate(*expr.right, registry)) return true;
  for (const auto& a : expr.args) {
    if (ContainsAggregate(*a, registry)) return true;
  }
  for (const auto& b : expr.branches) {
    if (ContainsAggregate(*b.condition, registry)) return true;
    if (ContainsAggregate(*b.result, registry)) return true;
  }
  if (expr.else_expr && ContainsAggregate(*expr.else_expr, registry)) {
    return true;
  }
  return false;
}

StatusOr<BoundAggregation> BindAggregation(
    const std::vector<const Expr*>& select_exprs,
    const std::vector<const Expr*>& group_by, const BindingScope& scope,
    const udf::UdfRegistry* registry) {
  BoundAggregation out;
  AggBindState state;
  state.group_by = &group_by;
  state.key_exprs = &out.key_exprs;
  state.specs = &out.specs;

  for (const Expr* g : group_by) {
    if (ContainsAggregate(*g, registry)) {
      return Status::InvalidArgument("aggregates are not allowed in GROUP BY");
    }
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr key,
                         BindRowExpr(*g, scope, registry));
    state.group_by_text.push_back(g->ToString());
    state.key_types.push_back(key->result_type());
    out.key_exprs.push_back(std::move(key));
  }

  for (const Expr* s : select_exprs) {
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr proj, Bind(*s, scope, registry, &state));
    out.projections.push_back(std::move(proj));
  }
  return out;
}

}  // namespace nlq::engine
