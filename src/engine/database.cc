#include "engine/database.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"
#include "engine/exec/executor.h"
#include "engine/exec/planner.h"
#include "engine/expr.h"
#include "engine/parser.h"
#include "storage/partitioned_table.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;
using storage::PartitionedTable;
using storage::Row;
using storage::Schema;

StatusOr<Row> CoerceRowToSchema(const Row& row, const Schema& schema) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("expected %zu values, got %zu", schema.num_columns(),
                     row.size()));
  }
  Row out(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const DataType want = schema.column(i).type;
    const Datum& v = row[i];
    if (v.is_null()) {
      out[i] = Datum::Null(want);
      continue;
    }
    if (v.type() == want) {
      out[i] = v;
      continue;
    }
    if (want == DataType::kDouble && v.type() != DataType::kVarchar) {
      out[i] = Datum::Double(v.AsDouble());
      continue;
    }
    if (want == DataType::kInt64 && v.type() != DataType::kVarchar) {
      out[i] = Datum::Int64(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("cannot coerce %s to %s for column '%s'",
                     DataTypeName(v.type()), DataTypeName(want),
                     schema.column(i).name.c_str()));
  }
  return out;
}

Status AppendResultToTable(const ResultSet& result, PartitionedTable* table) {
  for (const Row& row : result.rows()) {
    NLQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, table->schema()));
    NLQ_RETURN_IF_ERROR(table->AppendRow(coerced));
  }
  return Status::OK();
}

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(options), catalog_(options.num_partitions) {
  size_t threads = options_.num_threads;
  if (threads == 0) {
    // Morsel scheduling decouples worker count from partition count:
    // default to the hardware, not min(partitions, hardware).
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

StatusOr<ResultSet> Database::ExecuteSelect(const SelectStatement& select) {
  exec::Planner planner(&catalog_, &registry_, pool_.get(),
                        storage::RowBatch::kDefaultCapacity,
                        options_.enable_column_cache, options_.morsel_rows);
  NLQ_ASSIGN_OR_RETURN(exec::PhysicalPlan plan, planner.Plan(select));
  return exec::ExecutePlan(plan);
}

StatusOr<ResultSet> Database::Execute(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);

    case StatementKind::kCreateTable: {
      CreateTableStatement& create = *stmt.create_table;
      if (create.as_select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(ResultSet result,
                             ExecuteSelect(*create.as_select));
        NLQ_ASSIGN_OR_RETURN(
            PartitionedTable * table,
            catalog_.CreateTable(create.table_name, result.schema()));
        NLQ_RETURN_IF_ERROR(AppendResultToTable(result, table));
        return ResultSet();
      }
      NLQ_RETURN_IF_ERROR(
          catalog_.CreateTable(create.table_name, create.schema).status());
      return ResultSet();
    }

    case StatementKind::kInsert: {
      InsertStatement& insert = *stmt.insert;
      NLQ_ASSIGN_OR_RETURN(PartitionedTable * table,
                           catalog_.GetTable(insert.table_name));
      if (insert.select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(ResultSet result, ExecuteSelect(*insert.select));
        NLQ_RETURN_IF_ERROR(AppendResultToTable(result, table));
        return ResultSet();
      }
      // VALUES rows: constant expressions bound against an empty scope.
      BindingScope empty_scope;
      for (const auto& value_row : insert.value_rows) {
        Row row(value_row.size());
        Status error;
        Row empty_input;
        EvalContext ctx;
        ctx.input = &empty_input;
        ctx.error = &error;
        for (size_t c = 0; c < value_row.size(); ++c) {
          NLQ_ASSIGN_OR_RETURN(
              BoundExprPtr bound,
              BindRowExpr(*value_row[c], empty_scope, &registry_));
          row[c] = bound->Eval(ctx);
        }
        NLQ_RETURN_IF_ERROR(error);
        NLQ_ASSIGN_OR_RETURN(Row coerced,
                             CoerceRowToSchema(row, table->schema()));
        NLQ_RETURN_IF_ERROR(table->AppendRow(coerced));
      }
      return ResultSet();
    }

    case StatementKind::kDropTable:
      NLQ_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table_name));
      return ResultSet();
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteCommand(std::string_view sql) {
  return Execute(sql).status();
}

StatusOr<std::string> Database::Explain(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements only");
  }
  exec::Planner planner(&catalog_, &registry_, pool_.get(),
                        storage::RowBatch::kDefaultCapacity,
                        options_.enable_column_cache, options_.morsel_rows);
  NLQ_ASSIGN_OR_RETURN(exec::PhysicalPlan plan, planner.Plan(*stmt.select));
  return exec::ExplainPlan(*plan.root);
}

StatusOr<double> Database::QueryDouble(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(ResultSet result, Execute(sql));
  if (result.num_rows() != 1 || result.num_columns() != 1) {
    return Status::InvalidArgument(
        StringPrintf("expected 1x1 result, got %zux%zu", result.num_rows(),
                     result.num_columns()));
  }
  return result.GetDouble(0, 0);
}

}  // namespace nlq::engine
