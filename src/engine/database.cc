#include "engine/database.h"

#include <algorithm>
#include <thread>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "engine/exec/bytecode.h"
#include "engine/exec/executor.h"
#include "engine/exec/planner.h"
#include "engine/exec/view_registry.h"
#include "engine/expr.h"
#include "engine/parser.h"
#include "storage/partitioned_table.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;
using storage::PartitionedTable;
using storage::Row;
using storage::Schema;

StatusOr<Row> CoerceRowToSchema(const Row& row, const Schema& schema) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("expected %zu values, got %zu", schema.num_columns(),
                     row.size()));
  }
  Row out(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const DataType want = schema.column(i).type;
    const Datum& v = row[i];
    if (v.is_null()) {
      out[i] = Datum::Null(want);
      continue;
    }
    if (v.type() == want) {
      out[i] = v;
      continue;
    }
    if (want == DataType::kDouble && v.type() != DataType::kVarchar) {
      out[i] = Datum::Double(v.AsDouble());
      continue;
    }
    if (want == DataType::kInt64 && v.type() != DataType::kVarchar) {
      out[i] = Datum::Int64(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("cannot coerce %s to %s for column '%s'",
                     DataTypeName(v.type()), DataTypeName(want),
                     schema.column(i).name.c_str()));
  }
  return out;
}

/// Rewrites the bare kNotSupported a spilled table returns on append
/// into an actionable INSERT error: name the table and point at the
/// resident path (spilling is one-way; appends need a resident table).
Status WrapAppendError(Status status, const std::string& table_name) {
  if (status.ok() || status.code() != StatusCode::kNotSupported) {
    return status;
  }
  return Status::NotSupported(StringPrintf(
      "cannot INSERT into '%s': the table is spilled to disk and "
      "read-only; DROP TABLE %s and re-CREATE it resident (then reload "
      "and re-append) to continue inserting",
      table_name.c_str(), table_name.c_str()));
}

Status AppendResultToTable(const ResultSet& result, PartitionedTable* table,
                           const std::string& table_name) {
  for (const Row& row : result.rows()) {
    NLQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, table->schema()));
    NLQ_RETURN_IF_ERROR(WrapAppendError(table->AppendRow(coerced),
                                        table_name));
  }
  return Status::OK();
}

/// Shapes EXPLAIN [ANALYZE] text into a one-VARCHAR-column result set,
/// one row per rendered line.
ResultSet PlanTextToResultSet(const std::string& rendered) {
  std::vector<Row> rows;
  for (std::string_view line : SplitString(rendered, '\n')) {
    if (line.empty()) continue;  // trailing newline
    Row row(1);
    row[0] = Datum::Varchar(std::string(line));
    rows.push_back(std::move(row));
  }
  return ResultSet(Schema({{"plan", DataType::kVarchar}}), std::move(rows));
}

/// Registry counter name for a finished statement's outcome.
const char* OutcomeCounterName(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return "queries.cancelled";
    case StatusCode::kDeadlineExceeded:
      return "queries.deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "queries.resource_exhausted";
    default:
      return status.ok() ? "queries.ok" : "queries.error";
  }
}

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(options), catalog_(options.num_partitions) {
  size_t threads = options_.num_threads;
  if (threads == 0) {
    // Morsel scheduling decouples worker count from partition count:
    // default to the hardware, not min(partitions, hardware).
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  bytecode_cache_ = std::make_unique<exec::BytecodeCache>();
  if (options_.enable_view_maintenance) {
    view_registry_ = std::make_unique<exec::ViewRegistry>(
        options_.max_maintained_views, options_.view_memory_limit);
  }
}

Database::~Database() = default;

Status Database::SpillTable(std::string_view name) {
  // Spilling rewrites a table's storage out from under scans: take the
  // statement gate exclusively like any other mutation.
  std::unique_lock<std::shared_mutex> gate(statement_mu_);
  NLQ_ASSIGN_OR_RETURN(storage::PartitionedTable * table,
                       catalog_.GetTable(std::string(name)));
  if (buffer_pool_ == nullptr) {
    buffer_pool_ =
        std::make_unique<storage::BufferPool>(options_.buffer_pool_bytes);
  }
  const size_t chunk_rows = options_.spill_chunk_rows > 0
                                ? options_.spill_chunk_rows
                                : storage::SpillSegment::kDefaultChunkRows;
  // Scratch name: directory + table + this database's address keeps
  // concurrent databases apart; the file is unlinked on open anyway.
  const std::string path =
      options_.spill_directory + "/nlq_spill_" + std::string(name) + "_" +
      std::to_string(reinterpret_cast<uintptr_t>(this));
  // Spilling is a destructive mutation for view purposes: drop any
  // maintained views before the partitions change underneath them.
  if (view_registry_ != nullptr) {
    view_registry_->InvalidateTable(std::string(name));
  }
  return table->SpillToDisk(path, buffer_pool_.get(), chunk_rows);
}

StatusOr<ResultSet> Database::ExecuteSelect(const SelectStatement& select,
                                            const QueryContext* ctx,
                                            bool force_interpreted) {
  exec::Planner planner(&catalog_, &registry_, pool_.get(),
                        storage::RowBatch::kDefaultCapacity,
                        options_.enable_column_cache, options_.morsel_rows,
                        ctx, options_.enable_expr_compile && !force_interpreted,
                        bytecode_cache_.get(), view_registry_.get());
  NLQ_ASSIGN_OR_RETURN(exec::PhysicalPlan plan, planner.Plan(select));
  if (ctx != nullptr && ctx->stats() != nullptr) {
    exec::AttachQueryStats(plan.root.get(), ctx->stats());
  }
  return exec::ExecutePlan(plan, ctx);
}

StatusOr<ResultSet> Database::Execute(std::string_view sql,
                                      const QueryOptions& query_options) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));

  // One QueryContext per statement: id, deadline, memory budget. The
  // caller may supply the cancel token (server sessions do) so a
  // cancel that raced the statement's start still lands.
  QueryContext ctx;
  ctx.set_cancel_token(query_options.cancel_token);
  ctx.set_query_id(next_query_id_.fetch_add(1, std::memory_order_relaxed));
  const int64_t timeout_ms = query_options.timeout_ms >= 0
                                 ? query_options.timeout_ms
                                 : options_.default_timeout_ms;
  if (timeout_ms > 0) ctx.SetTimeout(timeout_ms);
  const uint64_t memory_limit =
      query_options.memory_limit >= 0
          ? static_cast<uint64_t>(query_options.memory_limit)
          : options_.query_memory_limit;
  MemoryTracker tracker(memory_limit);
  if (memory_limit > 0) ctx.set_memory(&tracker);

  // Observability: a QueryStats tree for the statement (EXPLAIN
  // ANALYZE needs one even when collection is off) plus process-wide
  // registry accounting of outcome and latency.
  std::unique_ptr<QueryStats> stats;
  if (options_.collect_query_stats ||
      (stmt.kind == StatementKind::kExplain && stmt.explain_analyze)) {
    stats = std::make_unique<QueryStats>();
    stats->query_id = ctx.query_id();
    stats->SetWorkerCount(pool_->num_workers());
    ctx.set_stats(stats.get());
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("queries.started").Increment();
  Stopwatch timer;

  // Publish the cancel token for the duration of the statement so
  // Cancel(query_id) from another thread can reach it; the token
  // itself is shared, so a Cancel racing this frame's teardown flips
  // a token nobody reads — harmless. Registration happens BEFORE the
  // id is announced through last_query_id_: a canceller acting on the
  // published id must never fall into a registered-but-unfindable
  // window and get NotFound while the statement runs (the token it
  // flips here is polled from the first morsel claim on).
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_queries_[ctx.query_id()] = ctx.cancel_token();
  }
  last_query_id_.store(ctx.query_id(), std::memory_order_release);

  // The statement gate: read-only statements execute concurrently,
  // mutating ones exclusively (see the class comment).
  const bool read_only = stmt.kind == StatementKind::kSelect ||
                         stmt.kind == StatementKind::kExplain;
  StatusOr<ResultSet> result = Status::Internal("statement did not run");
  if (read_only) {
    std::shared_lock<std::shared_mutex> gate(statement_mu_);
    result = ExecuteStatement(stmt, &ctx, query_options.force_interpreted);
  } else {
    std::unique_lock<std::shared_mutex> gate(statement_mu_);
    result = ExecuteStatement(stmt, &ctx, query_options.force_interpreted);
  }
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_queries_.erase(ctx.query_id());
  }

  const auto wall_ns =
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  metrics.counter(OutcomeCounterName(result.status())).Increment();
  metrics.histogram("query.latency").Observe(wall_ns);
  if (stats != nullptr) {
    // EXPLAIN ANALYZE already stamped the inner statement's wall time
    // for its rendering; keep that tighter number.
    if (stats->wall_time_ns == 0) stats->wall_time_ns = wall_ns;
    if (memory_limit > 0) stats->memory_peak_bytes = tracker.peak();
    metrics.counter("query.rows_returned")
        .Add(stats->rows_returned.load(std::memory_order_relaxed));
    metrics.counter("storage.pages_decoded")
        .Add(stats->pages_decoded.load(std::memory_order_relaxed));
    metrics.counter("storage.column_cache.hits")
        .Add(stats->column_cache_hits.load(std::memory_order_relaxed));
    metrics.counter("storage.column_cache.misses")
        .Add(stats->column_cache_misses.load(std::memory_order_relaxed));
    metrics.counter("storage.column_cache.fallbacks")
        .Add(stats->column_cache_fallbacks.load(std::memory_order_relaxed));
    uint64_t claims = 0;
    for (const uint64_t c : stats->WorkerMorselClaims()) claims += c;
    metrics.counter("exec.morsels_claimed").Add(claims);
    metrics.counter("exec.rows_vectorized")
        .Add(stats->rows_vectorized.load(std::memory_order_relaxed));
    metrics.counter("view.hits")
        .Add(stats->view_hits.load(std::memory_order_relaxed));
    metrics.counter("view.misses")
        .Add(stats->view_misses.load(std::memory_order_relaxed));
    metrics.counter("view.delta_rows")
        .Add(stats->view_delta_rows.load(std::memory_order_relaxed));
    metrics.counter("view.rebuilds")
        .Add(stats->view_rebuilds.load(std::memory_order_relaxed));
    if (view_registry_ != nullptr) {
      metrics.gauge("view.state_bytes")
          .Set(static_cast<int64_t>(view_registry_->state_bytes()));
    }
    std::lock_guard<std::mutex> stats_lock(last_stats_mu_);
    last_query_stats_ = SnapshotQueryStats(*stats);
  }
  return result;
}

Status Database::Cancel(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(live_mu_);
  auto it = live_queries_.find(query_id);
  if (it == live_queries_.end()) {
    return Status::NotFound(
        StringPrintf("no running query with id %llu",
                     static_cast<unsigned long long>(query_id)));
  }
  it->second->store(true, std::memory_order_release);
  return Status::OK();
}

StatusOr<ResultSet> Database::ExecuteStatement(Statement& stmt,
                                               const QueryContext* ctx,
                                               bool force_interpreted) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, ctx, force_interpreted);

    case StatementKind::kCreateTable: {
      CreateTableStatement& create = *stmt.create_table;
      if (create.as_select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(
            ResultSet result,
            ExecuteSelect(*create.as_select, ctx, force_interpreted));
        NLQ_ASSIGN_OR_RETURN(
            PartitionedTable * table,
            catalog_.CreateTable(create.table_name, result.schema()));
        NLQ_RETURN_IF_ERROR(
            AppendResultToTable(result, table, create.table_name));
        return ResultSet();
      }
      NLQ_RETURN_IF_ERROR(
          catalog_.CreateTable(create.table_name, create.schema).status());
      return ResultSet();
    }

    case StatementKind::kInsert: {
      InsertStatement& insert = *stmt.insert;
      NLQ_ASSIGN_OR_RETURN(PartitionedTable * table,
                           catalog_.GetTable(insert.table_name));
      if (insert.select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(
            ResultSet result,
            ExecuteSelect(*insert.select, ctx, force_interpreted));
        NLQ_RETURN_IF_ERROR(
            AppendResultToTable(result, table, insert.table_name));
        return ResultSet();
      }
      // VALUES rows: constant expressions bound against an empty scope.
      BindingScope empty_scope;
      for (const auto& value_row : insert.value_rows) {
        Row row(value_row.size());
        Status error;
        Row empty_input;
        EvalContext ctx;
        ctx.input = &empty_input;
        ctx.error = &error;
        for (size_t c = 0; c < value_row.size(); ++c) {
          NLQ_ASSIGN_OR_RETURN(
              BoundExprPtr bound,
              BindRowExpr(*value_row[c], empty_scope, &registry_));
          row[c] = bound->Eval(ctx);
        }
        NLQ_RETURN_IF_ERROR(error);
        NLQ_ASSIGN_OR_RETURN(Row coerced,
                             CoerceRowToSchema(row, table->schema()));
        NLQ_RETURN_IF_ERROR(WrapAppendError(table->AppendRow(coerced),
                                            insert.table_name));
      }
      return ResultSet();
    }

    case StatementKind::kDropTable:
      NLQ_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table_name));
      // A later CREATE TABLE with the same name must never alias a
      // stale entry's epochs; drop its views eagerly.
      if (view_registry_ != nullptr) {
        view_registry_->InvalidateTable(stmt.drop_table->table_name);
      }
      return ResultSet();

    case StatementKind::kExplain: {
      if (!stmt.explain_analyze) {
        // Plain EXPLAIN: plan only, never execute.
        exec::Planner planner(
            &catalog_, &registry_, pool_.get(),
            storage::RowBatch::kDefaultCapacity,
            options_.enable_column_cache, options_.morsel_rows, ctx,
            options_.enable_expr_compile && !force_interpreted,
            bytecode_cache_.get(), view_registry_.get());
        NLQ_ASSIGN_OR_RETURN(exec::PhysicalPlan plan,
                             planner.Plan(*stmt.select));
        return PlanTextToResultSet(exec::ExplainPlan(*plan.root));
      }
      QueryStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
      if (stats == nullptr) {
        return Status::Internal(
            "EXPLAIN ANALYZE requires a stats-collecting query context");
      }
      Stopwatch timer;
      NLQ_RETURN_IF_ERROR(
          ExecuteSelect(*stmt.select, ctx, force_interpreted).status());
      stats->wall_time_ns =
          static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
      return PlanTextToResultSet(
          exec::RenderAnalyzedPlan(SnapshotQueryStats(*stats)));
    }
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteCommand(std::string_view sql) {
  return Execute(sql).status();
}

StatusOr<std::string> Database::Explain(std::string_view sql,
                                        const QueryOptions& query_options) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements only");
  }
  // Planning reads the catalog; exclude concurrent DDL.
  std::shared_lock<std::shared_mutex> gate(statement_mu_);
  exec::Planner planner(
      &catalog_, &registry_, pool_.get(), storage::RowBatch::kDefaultCapacity,
      options_.enable_column_cache, options_.morsel_rows, /*ctx=*/nullptr,
      options_.enable_expr_compile && !query_options.force_interpreted,
      bytecode_cache_.get(), view_registry_.get());
  NLQ_ASSIGN_OR_RETURN(exec::PhysicalPlan plan, planner.Plan(*stmt.select));
  return exec::ExplainPlan(*plan.root);
}

StatusOr<std::string> Database::ExplainAnalyze(std::string_view sql) {
  std::string stmt_sql = "EXPLAIN ANALYZE ";
  stmt_sql += sql;
  NLQ_ASSIGN_OR_RETURN(ResultSet result, Execute(stmt_sql));
  std::string out;
  for (const Row& row : result.rows()) {
    out += row[0].string_value();
    out += "\n";
  }
  return out;
}

StatusOr<double> Database::QueryDouble(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(ResultSet result, Execute(sql));
  if (result.num_rows() != 1 || result.num_columns() != 1) {
    return Status::InvalidArgument(
        StringPrintf("expected 1x1 result, got %zux%zu", result.num_rows(),
                     result.num_columns()));
  }
  return result.GetDouble(0, 0);
}

}  // namespace nlq::engine
