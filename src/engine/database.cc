#include "engine/database.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "common/strings.h"
#include "engine/expr.h"
#include "engine/parser.h"
#include "storage/partitioned_table.h"
#include "udf/heap_segment.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;
using storage::PartitionedTable;
using storage::Row;
using storage::Schema;

// ---------------------------------------------------------------------------
// Aggregation state
// ---------------------------------------------------------------------------

struct BuiltinAggState {
  double sum = 0.0;
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool seen = false;
};

struct GroupState {
  Row keys;
  std::vector<BuiltinAggState> builtin;  // parallel to specs
  std::vector<std::unique_ptr<udf::HeapSegment>> heaps;
  std::vector<void*> udf_states;  // parallel to specs, null for builtins
};

struct RowKeyHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Datum& d : row) {
      h ^= d.KeyHash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].KeyEquals(b[i])) return false;
    }
    return true;
  }
};

using GroupMap = std::unordered_map<Row, GroupState, RowKeyHash, RowKeyEq>;

StatusOr<GroupState> InitGroupState(const std::vector<AggregateSpec>& specs,
                                    Row keys) {
  GroupState state;
  state.keys = std::move(keys);
  state.builtin.resize(specs.size());
  state.heaps.resize(specs.size());
  state.udf_states.resize(specs.size(), nullptr);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != AggregateSpec::Kind::kUdf) continue;
    state.heaps[i] = std::make_unique<udf::HeapSegment>();
    NLQ_ASSIGN_OR_RETURN(void* udf_state, specs[i].udaf->Init(
                                              state.heaps[i].get()));
    state.udf_states[i] = udf_state;
  }
  return state;
}

Status AccumulateRow(const std::vector<AggregateSpec>& specs,
                     GroupState* state, const EvalContext& ctx,
                     std::vector<Datum>* scratch) {
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggregateSpec& spec = specs[i];
    if (spec.kind == AggregateSpec::Kind::kCountStar) {
      ++state->builtin[i].count;
      continue;
    }
    scratch->resize(spec.args.size());
    for (size_t a = 0; a < spec.args.size(); ++a) {
      (*scratch)[a] = spec.args[a]->Eval(ctx);
    }
    if (ctx.error != nullptr && !ctx.error->ok()) return *ctx.error;
    if (spec.kind == AggregateSpec::Kind::kUdf) {
      NLQ_RETURN_IF_ERROR(
          spec.udaf->Accumulate(state->udf_states[i], *scratch));
      continue;
    }
    const Datum& v = (*scratch)[0];
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    BuiltinAggState& b = state->builtin[i];
    const double x = v.AsDouble();
    switch (spec.kind) {
      case AggregateSpec::Kind::kSum:
      case AggregateSpec::Kind::kAvg:
        b.sum += x;
        ++b.count;
        break;
      case AggregateSpec::Kind::kCount:
        ++b.count;
        break;
      case AggregateSpec::Kind::kMin:
        if (!b.seen || x < b.min) b.min = x;
        break;
      case AggregateSpec::Kind::kMax:
        if (!b.seen || x > b.max) b.max = x;
        break;
      default:
        break;
    }
    b.seen = true;
  }
  return Status::OK();
}

Status MergeGroup(const std::vector<AggregateSpec>& specs, GroupState* dst,
                  GroupState* src) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == AggregateSpec::Kind::kUdf) {
      NLQ_RETURN_IF_ERROR(
          specs[i].udaf->Merge(dst->udf_states[i], src->udf_states[i]));
      continue;
    }
    BuiltinAggState& d = dst->builtin[i];
    const BuiltinAggState& s = src->builtin[i];
    d.sum += s.sum;
    d.count += s.count;
    if (s.seen) {
      if (!d.seen || s.min < d.min) d.min = s.min;
      if (!d.seen || s.max > d.max) d.max = s.max;
      d.seen = true;
    }
  }
  return Status::OK();
}

StatusOr<Row> FinalizeGroup(const std::vector<AggregateSpec>& specs,
                            const GroupState& state) {
  Row out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggregateSpec& spec = specs[i];
    const BuiltinAggState& b = state.builtin[i];
    switch (spec.kind) {
      case AggregateSpec::Kind::kCountStar:
      case AggregateSpec::Kind::kCount:
        out[i] = Datum::Int64(b.count);
        break;
      case AggregateSpec::Kind::kSum:
        out[i] = b.seen ? Datum::Double(b.sum) : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kAvg:
        out[i] = b.count > 0
                     ? Datum::Double(b.sum / static_cast<double>(b.count))
                     : Datum::Null(DataType::kDouble);
        break;
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        if (!b.seen) {
          out[i] = Datum::Null(spec.result_type);
          break;
        }
        const double v =
            spec.kind == AggregateSpec::Kind::kMin ? b.min : b.max;
        out[i] = spec.result_type == DataType::kInt64
                     ? Datum::Int64(static_cast<int64_t>(v))
                     : Datum::Double(v);
        break;
      }
      case AggregateSpec::Kind::kUdf: {
        NLQ_ASSIGN_OR_RETURN(Datum v, spec.udaf->Finalize(state.udf_states[i]));
        out[i] = std::move(v);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row coercion for INSERT / CREATE AS
// ---------------------------------------------------------------------------

StatusOr<Row> CoerceRowToSchema(const Row& row, const Schema& schema) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("expected %zu values, got %zu", schema.num_columns(),
                     row.size()));
  }
  Row out(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const DataType want = schema.column(i).type;
    const Datum& v = row[i];
    if (v.is_null()) {
      out[i] = Datum::Null(want);
      continue;
    }
    if (v.type() == want) {
      out[i] = v;
      continue;
    }
    if (want == DataType::kDouble && v.type() != DataType::kVarchar) {
      out[i] = Datum::Double(v.AsDouble());
      continue;
    }
    if (want == DataType::kInt64 && v.type() != DataType::kVarchar) {
      out[i] = Datum::Int64(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("cannot coerce %s to %s for column '%s'",
                     DataTypeName(v.type()), DataTypeName(want),
                     schema.column(i).name.c_str()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ORDER BY support
// ---------------------------------------------------------------------------

// NULLs sort first; numerics by value; strings lexicographically.
int CompareDatum(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a.type() == DataType::kVarchar && b.type() == DataType::kVarchar) {
    const int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

Status SortResult(const SelectStatement& select,
                  const udf::UdfRegistry* registry, ResultSet* result) {
  if (select.order_by.empty()) return Status::OK();

  BindingScope scope;
  scope.AddTable("", &result->schema());
  const size_t num_keys = select.order_by.size();
  std::vector<BoundExprPtr> key_exprs;
  std::vector<bool> descending;
  for (const auto& item : select.order_by) {
    descending.push_back(item.descending);
    // Positional form: ORDER BY 2.
    if (item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.type() == DataType::kInt64 &&
        !item.expr->literal.is_null()) {
      const int64_t pos = item.expr->literal.int_value();
      if (pos < 1 || pos > static_cast<int64_t>(result->num_columns())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      const auto& col = result->schema().column(static_cast<size_t>(pos - 1));
      key_exprs.push_back(
          MakeBoundInputRef(static_cast<size_t>(pos - 1), col.type));
      continue;
    }
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         BindRowExpr(*item.expr, scope, registry));
    key_exprs.push_back(std::move(bound));
  }

  auto& rows = result->mutable_rows();
  std::vector<Row> sort_keys(rows.size());
  Status error;
  for (size_t r = 0; r < rows.size(); ++r) {
    EvalContext ctx;
    ctx.input = &rows[r];
    ctx.error = &error;
    Row keys(num_keys);
    for (size_t k = 0; k < num_keys; ++k) keys[k] = key_exprs[k]->Eval(ctx);
    sort_keys[r] = std::move(keys);
  }
  NLQ_RETURN_IF_ERROR(error);

  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < num_keys; ++k) {
      int c = CompareDatum(sort_keys[a][k], sort_keys[b][k]);
      if (descending[k]) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  std::vector<Row> sorted(rows.size());
  for (size_t i = 0; i < order.size(); ++i) sorted[i] = std::move(rows[order[i]]);
  rows = std::move(sorted);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

struct FromInputs {
  PartitionedTable* driver = nullptr;  // first table; scanned in parallel
  std::vector<std::vector<Row>> small_tables;  // remaining, materialized
  std::vector<const storage::Schema*> small_schemas;
  std::vector<std::string> small_aliases;
  BindingScope scope;
  BoundExprPtr residual_where;  // WHERE after pushdown (may be null)

  // Plan notes for EXPLAIN: conjuncts pushed per small-table alias and
  // the residual conjunct texts.
  std::vector<std::pair<std::string, std::string>> pushed_predicates;
  std::vector<std::string> residual_predicates;
};

StatusOr<FromInputs> PrepareFrom(const SelectStatement& select,
                                 storage::Catalog& catalog) {
  FromInputs inputs;
  for (size_t t = 0; t < select.from.size(); ++t) {
    NLQ_ASSIGN_OR_RETURN(PartitionedTable * table,
                         catalog.GetTable(select.from[t].table_name));
    inputs.scope.AddTable(select.from[t].alias, &table->schema());
    if (t == 0) {
      inputs.driver = table;
    } else {
      NLQ_ASSIGN_OR_RETURN(std::vector<Row> rows, table->ReadAllRows());
      inputs.small_tables.push_back(std::move(rows));
      inputs.small_schemas.push_back(&table->schema());
      inputs.small_aliases.push_back(select.from[t].alias);
    }
  }
  return inputs;
}

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

/// Pushes WHERE conjuncts that reference only one materialized small
/// table down to that table (pre-filtering its rows before the cross
/// product). Without this, the paper's scoring pattern — X
/// cross-joined with a k-row model table k times under `Lj.j = j`
/// predicates — would enumerate k^k combinations per X row. This is
/// the cross-join analogue of the paper's Section 3.6 join
/// optimizations. The remaining conjuncts are bound against the full
/// scope into `inputs->residual_where`.
Status ApplyWherePushdown(const SelectStatement& select,
                          const udf::UdfRegistry* registry,
                          FromInputs* inputs) {
  if (!select.where) return Status::OK();
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(select.where.get(), &conjuncts);

  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    if (ContainsAggregate(*conjunct, registry)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    bool pushed = false;
    for (size_t s = 0; s < inputs->small_tables.size() && !pushed; ++s) {
      BindingScope single;
      single.AddTable(inputs->small_aliases[s], inputs->small_schemas[s]);
      StatusOr<BoundExprPtr> bound = BindRowExpr(*conjunct, single, registry);
      if (!bound.ok()) continue;  // references other tables; try next
      // Pre-filter the materialized rows.
      std::vector<Row> kept;
      Status error;
      EvalContext ctx;
      ctx.error = &error;
      for (Row& row : inputs->small_tables[s]) {
        ctx.input = &row;
        const Datum cond = bound.value()->Eval(ctx);
        if (!cond.is_null() && cond.AsDouble() != 0.0) {
          kept.push_back(std::move(row));
        }
      }
      NLQ_RETURN_IF_ERROR(error);
      inputs->small_tables[s] = std::move(kept);
      inputs->pushed_predicates.emplace_back(inputs->small_aliases[s],
                                             conjunct->ToString());
      pushed = true;
    }
    if (!pushed) {
      residual.push_back(conjunct);
      inputs->residual_predicates.push_back(conjunct->ToString());
    }
  }

  if (!residual.empty()) {
    // Re-AND the residual conjuncts and bind against the full scope.
    ExprPtr combined = residual[0]->Clone();
    for (size_t i = 1; i < residual.size(); ++i) {
      combined = MakeBinary(BinaryOp::kAnd, std::move(combined),
                            residual[i]->Clone());
    }
    NLQ_ASSIGN_OR_RETURN(inputs->residual_where,
                         BindRowExpr(*combined, inputs->scope, registry));
  }
  return Status::OK();
}

/// Iterates the cross product of driver partition `part` with the
/// materialized small tables, invoking `fn(joined_row)` for rows that
/// pass `where` (may be null). `fn` returns a Status; first error
/// aborts the scan.
Status ScanPartition(const storage::Table& part,
                     const std::vector<std::vector<Row>>& smalls,
                     size_t total_slots, const BoundExpr* where,
                     Status* eval_error,
                     const std::function<Status(const Row&)>& fn) {
  Row joined(total_slots);
  storage::TableScanner scanner = part.Scan();
  EvalContext ctx;
  ctx.input = &joined;
  ctx.error = eval_error;

  // Any empty small table empties the cross product.
  for (const auto& s : smalls) {
    if (s.empty()) return Status::OK();
  }

  std::vector<size_t> odometer(smalls.size(), 0);
  while (scanner.Next()) {
    const Row& drow = scanner.row();
    std::copy(drow.begin(), drow.end(), joined.begin());
    // Odometer over the small tables' cartesian product.
    std::fill(odometer.begin(), odometer.end(), 0);
    for (;;) {
      size_t offset = drow.size();
      for (size_t s = 0; s < smalls.size(); ++s) {
        const Row& srow = smalls[s][odometer[s]];
        std::copy(srow.begin(), srow.end(),
                  joined.begin() + static_cast<ptrdiff_t>(offset));
        offset += srow.size();
      }
      bool pass = true;
      if (where != nullptr) {
        const Datum cond = where->Eval(ctx);
        pass = !cond.is_null() && cond.AsDouble() != 0.0;
      }
      if (eval_error != nullptr && !eval_error->ok()) return *eval_error;
      if (pass) NLQ_RETURN_IF_ERROR(fn(joined));

      // Advance odometer.
      size_t s = 0;
      for (; s < smalls.size(); ++s) {
        if (++odometer[s] < smalls[s].size()) break;
        odometer[s] = 0;
      }
      if (s == smalls.size()) break;  // wrapped (or no small tables)
    }
  }
  return scanner.status();
}

std::string ResultColumnName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr) {
    std::string name = item.expr->ToString();
    if (name.size() <= 64) return name;
  }
  return "col" + std::to_string(index + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::Database(DatabaseOptions options)
    : options_(options), catalog_(options.num_partitions) {
  size_t threads = options_.num_threads;
  if (threads == 0) {
    const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(options_.num_partitions, hw);
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

namespace {

StatusOr<ResultSet> ExecuteSelect(Database& db, const SelectStatement& select);

StatusOr<ResultSet> ExecuteNonAggregate(Database& db,
                                        const SelectStatement& select,
                                        FromInputs& inputs) {
  const udf::UdfRegistry* registry = &db.udfs();

  // Expand the select list (handling bare `*`).
  std::vector<storage::Column> out_cols;
  std::vector<BoundExprPtr> projections;
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.expr == nullptr) {  // bare *
      for (const auto& col : inputs.scope.AllColumns()) out_cols.push_back(col);
      continue;
    }
    NLQ_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         BindRowExpr(*item.expr, inputs.scope, registry));
    out_cols.push_back({ResultColumnName(item, i), bound->result_type()});
    projections.push_back(std::move(bound));
  }
  const bool has_star =
      std::any_of(select.items.begin(), select.items.end(),
                  [](const SelectItem& item) { return item.expr == nullptr; });

  const BoundExpr* where = inputs.residual_where.get();

  Schema out_schema{std::move(out_cols)};

  // No FROM: evaluate once against an empty row.
  if (inputs.driver == nullptr) {
    Row empty;
    Status error;
    EvalContext ctx;
    ctx.input = &empty;
    ctx.error = &error;
    bool pass = true;
    if (where != nullptr) {
      const Datum cond = where->Eval(ctx);
      pass = !cond.is_null() && cond.AsDouble() != 0.0;
    }
    std::vector<Row> rows;
    if (pass) {
      Row out(projections.size());
      for (size_t c = 0; c < projections.size(); ++c) {
        out[c] = projections[c]->Eval(ctx);
      }
      rows.push_back(std::move(out));
    }
    NLQ_RETURN_IF_ERROR(error);
    return ResultSet(std::move(out_schema), std::move(rows));
  }

  const size_t parts = inputs.driver->num_partitions();
  std::vector<std::vector<Row>> part_rows(parts);
  std::vector<Status> part_status(parts);

  db.pool().ParallelFor(parts, [&](size_t p) {
    Status eval_error;
    const Status scan_status = ScanPartition(
        inputs.driver->partition(p), inputs.small_tables,
        inputs.scope.total_slots(), where, &eval_error,
        [&](const Row& joined) -> Status {
          Row out;
          if (has_star) {
            // SELECT * (possibly mixed with expressions is not
            // supported: star copies the joined row).
            out = joined;
          } else {
            EvalContext ctx;
            ctx.input = &joined;
            ctx.error = &eval_error;
            out.resize(projections.size());
            for (size_t c = 0; c < projections.size(); ++c) {
              out[c] = projections[c]->Eval(ctx);
            }
            if (!eval_error.ok()) return eval_error;
          }
          part_rows[p].push_back(std::move(out));
          return Status::OK();
        });
    part_status[p] = scan_status.ok() ? eval_error : scan_status;
  });

  for (const Status& s : part_status) NLQ_RETURN_IF_ERROR(s);
  std::vector<Row> rows;
  for (auto& pr : part_rows) {
    for (auto& r : pr) rows.push_back(std::move(r));
  }
  return ResultSet(std::move(out_schema), std::move(rows));
}

StatusOr<ResultSet> ExecuteAggregate(Database& db,
                                     const SelectStatement& select,
                                     FromInputs& inputs) {
  const udf::UdfRegistry* registry = &db.udfs();

  std::vector<const Expr*> select_exprs;
  for (const auto& item : select.items) {
    if (item.expr == nullptr) {
      return Status::InvalidArgument("'*' requires COUNT(*) in aggregates");
    }
    select_exprs.push_back(item.expr.get());
  }
  // HAVING is bound like one more (hidden) select item so it can mix
  // aggregates and group keys; its value filters groups below.
  const bool has_having = select.having != nullptr;
  if (has_having) select_exprs.push_back(select.having.get());
  std::vector<const Expr*> group_by;
  for (const auto& g : select.group_by) group_by.push_back(g.get());

  NLQ_ASSIGN_OR_RETURN(
      BoundAggregation agg,
      BindAggregation(select_exprs, group_by, inputs.scope, registry));

  const BoundExpr* where = inputs.residual_where.get();

  std::vector<storage::Column> out_cols;
  for (size_t i = 0; i < select.items.size(); ++i) {
    out_cols.push_back({ResultColumnName(select.items[i], i),
                        agg.projections[i]->result_type()});
  }
  Schema out_schema{std::move(out_cols)};

  const size_t parts =
      inputs.driver == nullptr ? 0 : inputs.driver->num_partitions();
  std::vector<GroupMap> part_groups(std::max<size_t>(parts, 1));
  std::vector<Status> part_status(std::max<size_t>(parts, 1));

  if (inputs.driver != nullptr) {
    db.pool().ParallelFor(parts, [&](size_t p) {
      GroupMap& groups = part_groups[p];
      Status eval_error;
      std::vector<Datum> scratch;
      Row keys(agg.key_exprs.size());
      const Status scan_status = ScanPartition(
          inputs.driver->partition(p), inputs.small_tables,
          inputs.scope.total_slots(), where, &eval_error,
          [&](const Row& joined) -> Status {
            EvalContext ctx;
            ctx.input = &joined;
            ctx.error = &eval_error;
            for (size_t k = 0; k < agg.key_exprs.size(); ++k) {
              keys[k] = agg.key_exprs[k]->Eval(ctx);
            }
            if (!eval_error.ok()) return eval_error;
            auto it = groups.find(keys);
            if (it == groups.end()) {
              NLQ_ASSIGN_OR_RETURN(GroupState fresh,
                                   InitGroupState(agg.specs, keys));
              it = groups.emplace(keys, std::move(fresh)).first;
            }
            return AccumulateRow(agg.specs, &it->second, ctx, &scratch);
          });
      part_status[p] = scan_status.ok() ? eval_error : scan_status;
    });
    for (const Status& s : part_status) NLQ_RETURN_IF_ERROR(s);
  }

  // Merge partial aggregates into partition 0's map (the paper's
  // "partial result aggregation ... by a master thread").
  GroupMap& global = part_groups[0];
  for (size_t p = 1; p < part_groups.size(); ++p) {
    for (auto& [key, state] : part_groups[p]) {
      auto it = global.find(key);
      if (it == global.end()) {
        global.emplace(key, std::move(state));
      } else {
        NLQ_RETURN_IF_ERROR(MergeGroup(agg.specs, &it->second, &state));
      }
    }
    part_groups[p].clear();
  }

  // Global aggregate over empty input still yields one row.
  if (global.empty() && agg.key_exprs.empty()) {
    NLQ_ASSIGN_OR_RETURN(GroupState fresh, InitGroupState(agg.specs, Row{}));
    global.emplace(Row{}, std::move(fresh));
  }

  std::vector<Row> rows;
  rows.reserve(global.size());
  Status error;
  const size_t num_output = select.items.size();
  for (const auto& [key, state] : global) {
    NLQ_ASSIGN_OR_RETURN(Row agg_values, FinalizeGroup(agg.specs, state));
    EvalContext ctx;
    ctx.keys = &state.keys;
    ctx.aggs = &agg_values;
    ctx.error = &error;
    if (has_having) {
      const Datum keep = agg.projections[num_output]->Eval(ctx);
      NLQ_RETURN_IF_ERROR(error);
      if (keep.is_null() || keep.AsDouble() == 0.0) continue;
    }
    Row out(num_output);
    for (size_t c = 0; c < num_output; ++c) {
      out[c] = agg.projections[c]->Eval(ctx);
    }
    NLQ_RETURN_IF_ERROR(error);
    rows.push_back(std::move(out));
  }
  return ResultSet(std::move(out_schema), std::move(rows));
}

StatusOr<ResultSet> ExecuteSelect(Database& db,
                                  const SelectStatement& select) {
  NLQ_ASSIGN_OR_RETURN(FromInputs inputs, PrepareFrom(select, db.catalog()));
  NLQ_RETURN_IF_ERROR(ApplyWherePushdown(select, &db.udfs(), &inputs));

  bool is_aggregate = !select.group_by.empty() || select.having != nullptr;
  if (!is_aggregate) {
    for (const auto& item : select.items) {
      if (item.expr != nullptr && ContainsAggregate(*item.expr, &db.udfs())) {
        is_aggregate = true;
        break;
      }
    }
  }

  StatusOr<ResultSet> result =
      is_aggregate ? ExecuteAggregate(db, select, inputs)
                   : ExecuteNonAggregate(db, select, inputs);
  if (!result.ok()) return result.status();

  NLQ_RETURN_IF_ERROR(SortResult(select, &db.udfs(), &result.value()));
  if (select.limit >= 0 &&
      result->num_rows() > static_cast<size_t>(select.limit)) {
    result->mutable_rows().resize(static_cast<size_t>(select.limit));
  }
  return result;
}

Status AppendResultToTable(const ResultSet& result, PartitionedTable* table) {
  for (const Row& row : result.rows()) {
    NLQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, table->schema()));
    NLQ_RETURN_IF_ERROR(table->AppendRow(coerced));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ResultSet> Database::Execute(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*this, *stmt.select);

    case StatementKind::kCreateTable: {
      CreateTableStatement& create = *stmt.create_table;
      if (create.as_select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(ResultSet result,
                             ExecuteSelect(*this, *create.as_select));
        NLQ_ASSIGN_OR_RETURN(
            PartitionedTable * table,
            catalog_.CreateTable(create.table_name, result.schema()));
        NLQ_RETURN_IF_ERROR(AppendResultToTable(result, table));
        return ResultSet();
      }
      NLQ_RETURN_IF_ERROR(
          catalog_.CreateTable(create.table_name, create.schema).status());
      return ResultSet();
    }

    case StatementKind::kInsert: {
      InsertStatement& insert = *stmt.insert;
      NLQ_ASSIGN_OR_RETURN(PartitionedTable * table,
                           catalog_.GetTable(insert.table_name));
      if (insert.select != nullptr) {
        NLQ_ASSIGN_OR_RETURN(ResultSet result,
                             ExecuteSelect(*this, *insert.select));
        NLQ_RETURN_IF_ERROR(AppendResultToTable(result, table));
        return ResultSet();
      }
      // VALUES rows: constant expressions bound against an empty scope.
      BindingScope empty_scope;
      for (const auto& value_row : insert.value_rows) {
        Row row(value_row.size());
        Status error;
        Row empty_input;
        EvalContext ctx;
        ctx.input = &empty_input;
        ctx.error = &error;
        for (size_t c = 0; c < value_row.size(); ++c) {
          NLQ_ASSIGN_OR_RETURN(
              BoundExprPtr bound,
              BindRowExpr(*value_row[c], empty_scope, &registry_));
          row[c] = bound->Eval(ctx);
        }
        NLQ_RETURN_IF_ERROR(error);
        NLQ_ASSIGN_OR_RETURN(Row coerced,
                             CoerceRowToSchema(row, table->schema()));
        NLQ_RETURN_IF_ERROR(table->AppendRow(coerced));
      }
      return ResultSet();
    }

    case StatementKind::kDropTable:
      NLQ_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table_name));
      return ResultSet();
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteCommand(std::string_view sql) {
  return Execute(sql).status();
}


StatusOr<std::string> Database::Explain(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements only");
  }
  const SelectStatement& select = *stmt.select;
  NLQ_ASSIGN_OR_RETURN(FromInputs inputs, PrepareFrom(select, catalog_));
  NLQ_RETURN_IF_ERROR(ApplyWherePushdown(select, &registry_, &inputs));

  std::string out;
  if (inputs.driver != nullptr) {
    out += StringPrintf("scan %s (%llu rows, %zu partitions in parallel)\n",
                        select.from[0].table_name.c_str(),
                        static_cast<unsigned long long>(
                            inputs.driver->num_rows()),
                        inputs.driver->num_partitions());
  } else {
    out += "constant input (no FROM)\n";
  }
  for (size_t t = 0; t < inputs.small_tables.size(); ++t) {
    out += StringPrintf("cross join %s AS %s (materialized, %zu rows",
                        select.from[t + 1].table_name.c_str(),
                        inputs.small_aliases[t].c_str(),
                        inputs.small_tables[t].size());
    bool first = true;
    for (const auto& [alias, text] : inputs.pushed_predicates) {
      if (alias != inputs.small_aliases[t]) continue;
      out += first ? " after pushdown: " : " AND ";
      out += text;
      first = false;
    }
    out += ")\n";
  }
  if (!inputs.residual_predicates.empty()) {
    out += "filter: ";
    for (size_t i = 0; i < inputs.residual_predicates.size(); ++i) {
      if (i > 0) out += " AND ";
      out += inputs.residual_predicates[i];
    }
    out += "\n";
  }

  bool is_aggregate = !select.group_by.empty() || select.having != nullptr;
  if (!is_aggregate) {
    for (const auto& item : select.items) {
      if (item.expr != nullptr && ContainsAggregate(*item.expr, &registry_)) {
        is_aggregate = true;
        break;
      }
    }
  }
  if (is_aggregate) {
    std::vector<const Expr*> select_exprs;
    for (const auto& item : select.items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument("'*' requires COUNT(*) in aggregates");
      }
      select_exprs.push_back(item.expr.get());
    }
    if (select.having) select_exprs.push_back(select.having.get());
    std::vector<const Expr*> group_by;
    for (const auto& g : select.group_by) group_by.push_back(g.get());
    NLQ_ASSIGN_OR_RETURN(
        BoundAggregation agg,
        BindAggregation(select_exprs, group_by, inputs.scope, &registry_));
    out += StringPrintf("hash aggregate: %zu group key(s), %zu aggregate(s)",
                        agg.key_exprs.size(), agg.specs.size());
    size_t udfs = 0;
    for (const auto& spec : agg.specs) {
      if (spec.kind == AggregateSpec::Kind::kUdf) ++udfs;
    }
    if (udfs > 0) out += StringPrintf(" (%zu aggregate UDF call(s))", udfs);
    out += "\n";
    out += StringPrintf("merge: %zu partial state(s) per group\n",
                        inputs.driver == nullptr
                            ? size_t{1}
                            : inputs.driver->num_partitions());
    if (select.having) out += "having: " + select.having->ToString() + "\n";
  } else {
    out += StringPrintf("project: %zu column(s)\n", select.items.size());
  }
  if (!select.order_by.empty()) {
    out += StringPrintf("sort: %zu key(s)\n", select.order_by.size());
  }
  if (select.limit >= 0) {
    out += StringPrintf("limit: %lld\n",
                        static_cast<long long>(select.limit));
  }
  return out;
}

StatusOr<double> Database::QueryDouble(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(ResultSet result, Execute(sql));
  if (result.num_rows() != 1 || result.num_columns() != 1) {
    return Status::InvalidArgument(
        StringPrintf("expected 1x1 result, got %zux%zu", result.num_rows(),
                     result.num_columns()));
  }
  return result.GetDouble(0, 0);
}

}  // namespace nlq::engine
