#include "engine/parser.h"

#include <optional>

#include "common/strings.h"
#include "engine/lexer.h"

namespace nlq::engine {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement();
  StatusOr<ExprPtr> ParseExpressionOnly();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Match(TokenType type, std::string_view text) {
    const Token& t = Peek();
    const bool hit = t.type == type && t.text == text;
    if (hit) Advance();
    return hit;
  }
  bool MatchKeyword(std::string_view kw) {
    return Match(TokenType::kKeyword, kw);
  }
  bool MatchSymbol(std::string_view sym) {
    return Match(TokenType::kSymbol, sym);
  }
  Status Expect(TokenType type, std::string_view text) {
    if (Match(type, text)) return Status::OK();
    return Error("expected '" + std::string(text) + "'");
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StringPrintf("%s near offset %zu (got '%s')",
                                           what.c_str(), Peek().offset,
                                           Peek().text.c_str()));
  }

  StatusOr<std::unique_ptr<SelectStatement>> ParseSelect();
  StatusOr<Statement> ParseCreate();
  StatusOr<Statement> ParseInsert();
  StatusOr<Statement> ParseDrop();

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }
  StatusOr<ExprPtr> ParseOr();
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseNot();
  StatusOr<ExprPtr> ParseComparison();
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParseUnary();
  StatusOr<ExprPtr> ParsePrimary();
  StatusOr<ExprPtr> ParseCase();

  StatusOr<storage::DataType> ParseDataType();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (Peek().IsKeyword("SELECT")) {
    stmt.kind = StatementKind::kSelect;
    NLQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (Peek().IsKeyword("CREATE")) {
    NLQ_ASSIGN_OR_RETURN(stmt, ParseCreate());
  } else if (Peek().IsKeyword("INSERT")) {
    NLQ_ASSIGN_OR_RETURN(stmt, ParseInsert());
  } else if (Peek().IsKeyword("DROP")) {
    NLQ_ASSIGN_OR_RETURN(stmt, ParseDrop());
  } else if (Peek().IsKeyword("EXPLAIN")) {
    Advance();
    stmt.kind = StatementKind::kExplain;
    stmt.explain_analyze = MatchKeyword("ANALYZE");
    if (!Peek().IsKeyword("SELECT")) {
      return Error("EXPLAIN supports SELECT statements only");
    }
    NLQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else {
    return Error("expected SELECT, CREATE, INSERT, DROP or EXPLAIN");
  }
  MatchSymbol(";");
  if (Peek().type != TokenType::kEndOfInput) {
    return Error("unexpected trailing input");
  }
  return stmt;
}

StatusOr<ExprPtr> Parser::ParseExpressionOnly() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (Peek().type != TokenType::kEndOfInput) {
    return Error("unexpected trailing input after expression");
  }
  return e;
}

StatusOr<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "SELECT"));
  auto select = std::make_unique<SelectStatement>();

  // Select list.
  for (;;) {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.expr = nullptr;  // bare star
    } else {
      NLQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        // Implicit alias: `expr name`.
        item.alias = Advance().text;
      }
    }
    select->items.push_back(std::move(item));
    if (!MatchSymbol(",")) break;
  }

  // FROM clause.
  if (MatchKeyword("FROM")) {
    for (;;) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name in FROM");
      }
      TableRef ref;
      ref.table_name = Advance().text;
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        ref.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Advance().text;
      }
      if (ref.alias.empty()) ref.alias = ref.table_name;
      select->from.push_back(std::move(ref));
      if (MatchSymbol(",")) continue;
      if (Peek().IsKeyword("CROSS")) {
        Advance();
        NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "JOIN"));
        continue;
      }
      break;
    }
  }

  if (MatchKeyword("WHERE")) {
    NLQ_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
    for (;;) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
      if (!MatchSymbol(",")) break;
    }
  }
  if (MatchKeyword("HAVING")) {
    NLQ_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "BY"));
    for (;;) {
      OrderByItem item;
      NLQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kNumber) {
      return Error("expected number after LIMIT");
    }
    NLQ_ASSIGN_OR_RETURN(int64_t limit, ParseInt64(Advance().text));
    select->limit = limit;
  }
  return select;
}

StatusOr<storage::DataType> Parser::ParseDataType() {
  const Token& t = Peek();
  if (t.IsKeyword("DOUBLE")) {
    Advance();
    MatchKeyword("PRECISION");
    return storage::DataType::kDouble;
  }
  if (t.IsKeyword("FLOAT")) {
    Advance();
    return storage::DataType::kDouble;
  }
  if (t.IsKeyword("BIGINT") || t.IsKeyword("INT") || t.IsKeyword("INTEGER")) {
    Advance();
    return storage::DataType::kInt64;
  }
  if (t.IsKeyword("VARCHAR")) {
    Advance();
    if (MatchSymbol("(")) {  // optional length, ignored
      if (Peek().type != TokenType::kNumber) {
        return Error("expected length in VARCHAR(n)");
      }
      Advance();
      NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    }
    return storage::DataType::kVarchar;
  }
  return Error("expected a data type");
}

StatusOr<Statement> Parser::ParseCreate() {
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "CREATE"));
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "TABLE"));
  if (Peek().type != TokenType::kIdentifier) {
    return Error("expected table name");
  }
  auto create = std::make_unique<CreateTableStatement>();
  create->table_name = Advance().text;

  if (MatchKeyword("AS")) {
    NLQ_ASSIGN_OR_RETURN(create->as_select, ParseSelect());
  } else {
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
    std::vector<storage::Column> cols;
    for (;;) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name");
      }
      storage::Column col;
      col.name = Advance().text;
      NLQ_ASSIGN_OR_RETURN(col.type, ParseDataType());
      cols.push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    create->schema = storage::Schema(std::move(cols));
  }
  Statement stmt;
  stmt.kind = StatementKind::kCreateTable;
  stmt.create_table = std::move(create);
  return stmt;
}

StatusOr<Statement> Parser::ParseInsert() {
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "INSERT"));
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "INTO"));
  if (Peek().type != TokenType::kIdentifier) {
    return Error("expected table name");
  }
  auto insert = std::make_unique<InsertStatement>();
  insert->table_name = Advance().text;

  if (Peek().IsKeyword("SELECT")) {
    NLQ_ASSIGN_OR_RETURN(insert->select, ParseSelect());
  } else {
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "VALUES"));
    for (;;) {
      NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, "("));
      std::vector<ExprPtr> row;
      for (;;) {
        NLQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
      NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
      insert->value_rows.push_back(std::move(row));
      if (!MatchSymbol(",")) break;
    }
  }
  Statement stmt;
  stmt.kind = StatementKind::kInsert;
  stmt.insert = std::move(insert);
  return stmt;
}

StatusOr<Statement> Parser::ParseDrop() {
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "DROP"));
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "TABLE"));
  if (Peek().type != TokenType::kIdentifier) {
    return Error("expected table name");
  }
  auto drop = std::make_unique<DropTableStatement>();
  drop->table_name = Advance().text;
  Statement stmt;
  stmt.kind = StatementKind::kDropTable;
  stmt.drop_table = std::move(drop);
  return stmt;
}

StatusOr<ExprPtr> Parser::ParseOr() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAnd() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    NLQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

StatusOr<ExprPtr> Parser::ParseComparison() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL.
  if (Peek().IsKeyword("IS")) {
    Advance();
    bool negated = false;
    if (MatchKeyword("NOT")) negated = true;
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "NULL"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIsNull;
    e->left = std::move(left);
    e->is_null_negated = negated;
    return e;
  }
  static constexpr struct {
    const char* sym;
    BinaryOp op;
  } kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
              {"<>", BinaryOp::kNe}, {"=", BinaryOp::kEq},
              {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const auto& entry : kOps) {
    if (Peek().IsSymbol(entry.sym)) {
      Advance();
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return MakeBinary(entry.op, std::move(left), std::move(right));
    }
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    if (MatchSymbol("+")) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(BinaryOp::kAdd, std::move(left), std::move(right));
    } else if (MatchSymbol("-")) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(BinaryOp::kSub, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

StatusOr<ExprPtr> Parser::ParseMultiplicative() {
  NLQ_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    if (MatchSymbol("*")) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(BinaryOp::kMul, std::move(left), std::move(right));
    } else if (MatchSymbol("/")) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(BinaryOp::kDiv, std::move(left), std::move(right));
    } else if (MatchSymbol("%")) {
      NLQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(BinaryOp::kMod, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

StatusOr<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    NLQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNegate, std::move(operand));
  }
  if (MatchSymbol("+")) return ParseUnary();
  return ParsePrimary();
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.type == TokenType::kNumber) {
    Advance();
    // Integers without '.'/'e' stay BIGINT; everything else DOUBLE.
    if (t.text.find_first_of(".eE") == std::string::npos) {
      NLQ_ASSIGN_OR_RETURN(int64_t v, ParseInt64(t.text));
      return MakeLiteral(storage::Datum::Int64(v));
    }
    NLQ_ASSIGN_OR_RETURN(double v, ParseDouble(t.text));
    return MakeLiteral(storage::Datum::Double(v));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return MakeLiteral(storage::Datum::Varchar(t.text));
  }
  if (t.IsKeyword("NULL")) {
    Advance();
    return MakeLiteral(storage::Datum::Null(storage::DataType::kDouble));
  }
  if (t.IsKeyword("CASE")) return ParseCase();
  if (t.IsSymbol("(")) {
    Advance();
    NLQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
    return e;
  }
  if (t.type == TokenType::kIdentifier) {
    std::string first = Advance().text;
    // Function call?
    if (Peek().IsSymbol("(")) {
      Advance();
      std::vector<ExprPtr> args;
      if (Peek().IsSymbol("*")) {
        // COUNT(*).
        Advance();
        args.push_back(MakeStar());
      } else if (!Peek().IsSymbol(")")) {
        for (;;) {
          NLQ_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
          args.push_back(std::move(a));
          if (!MatchSymbol(",")) break;
        }
      }
      NLQ_RETURN_IF_ERROR(Expect(TokenType::kSymbol, ")"));
      return MakeFunction(AsciiToLower(first), std::move(args));
    }
    // Qualified column `t.col`?
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      std::string col = Advance().text;
      return MakeColumnRef(std::move(first), std::move(col));
    }
    return MakeColumnRef("", std::move(first));
  }
  return Error("expected an expression");
}

StatusOr<ExprPtr> Parser::ParseCase() {
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "CASE"));
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  while (MatchKeyword("WHEN")) {
    CaseBranch branch;
    NLQ_ASSIGN_OR_RETURN(branch.condition, ParseExpr());
    NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "THEN"));
    NLQ_ASSIGN_OR_RETURN(branch.result, ParseExpr());
    e->branches.push_back(std::move(branch));
  }
  if (e->branches.empty()) {
    return Error("CASE requires at least one WHEN branch");
  }
  if (MatchKeyword("ELSE")) {
    NLQ_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
  }
  NLQ_RETURN_IF_ERROR(Expect(TokenType::kKeyword, "END"));
  return e;
}

}  // namespace

StatusOr<Statement> ParseStatement(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

StatusOr<ExprPtr> ParseExpression(std::string_view sql) {
  NLQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

}  // namespace nlq::engine
