#include "engine/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace nlq::engine {
namespace {

// Reserved words recognized as keywords (upper-cased in tokens).
// Anything else alphabetic is an identifier.
constexpr const char* kKeywords[] = {
    "SELECT", "FROM",   "WHERE",  "GROUP",    "BY",     "ORDER",  "HAVING",
    "AS",     "AND",    "OR",     "NOT",      "NULL",   "CASE",   "WHEN",
    "THEN",   "ELSE",   "END",    "CREATE",   "TABLE",  "INSERT", "INTO",
    "VALUES", "DROP",   "CROSS",  "JOIN",     "IS",     "ASC",    "DESC",
    "LIMIT",  "DOUBLE", "BIGINT", "INT",      "INTEGER", "FLOAT", "VARCHAR",
    "PRECISION", "EXPLAIN", "ANALYZE",
};

bool IsKeywordWord(std::string_view upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsSymbol(std::string_view sym) const {
  return type == TokenType::kSymbol && text == sym;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line, /* ... */.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      const size_t close = sql.find("*/", i + 2);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated /* comment");
      }
      i = close + 2;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      // Exponent part.
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      tokens.push_back(
          {TokenType::kNumber, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      tokens.push_back({TokenType::kString, std::move(value), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string_view two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            {TokenType::kSymbol, two == "!=" ? "<>" : std::string(two), start});
        i += 2;
        continue;
      }
    }
    if (std::string_view("(),*+-/.=<>;%").find(c) != std::string_view::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(
        StringPrintf("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back({TokenType::kEndOfInput, "", n});
  return tokens;
}

}  // namespace nlq::engine
