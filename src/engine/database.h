#ifndef NLQ_ENGINE_DATABASE_H_
#define NLQ_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/threadpool.h"
#include "engine/result_set.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace nlq::engine {

struct SelectStatement;

/// Engine configuration.
struct DatabaseOptions {
  /// Horizontal partitions per table — the "parallel processing
  /// threads" of the paper's Teradata deployment (it used 20).
  size_t num_partitions = 8;

  /// Worker threads executing scan/aggregate morsels. 0 = hardware
  /// concurrency. Morsel-driven scheduling decouples this from
  /// `num_partitions`: any thread count drains any partition layout,
  /// and results do not depend on the choice.
  size_t num_threads = 0;

  /// Rows per scan morsel — the unit of work parallel scans hand to
  /// pool workers. Morsel boundaries depend only on (partition,
  /// offset), never on thread count, keeping query results
  /// bit-identical whatever `num_threads` is. 0 = one morsel per
  /// partition (the pre-morsel partition-granular behavior).
  uint64_t morsel_rows = 16384;

  /// Keep per-partition decoded column arrays cached between columnar
  /// fast-path scans (iterative model building re-scans the same table
  /// many times). Appends invalidate the cache; disable to bound
  /// memory at one decode per scan instead.
  bool enable_column_cache = true;
};

/// Embedded relational engine: catalog + SQL executor + UDF registry.
///
/// Statements execute their partition scans in parallel internally,
/// but the Database object itself is NOT thread-safe: issue one
/// statement at a time per Database (DDL mutates the catalog and the
/// worker pool serves one batch at a time).
///
/// This is the DBMS substrate standing in for Teradata V2R6: tables
/// are hash-partitioned across AMP-style partitions, scans and
/// aggregations run one task per partition on a thread pool, and
/// aggregate UDFs follow the Init/Accumulate/Merge/Finalize protocol
/// with per-group bounded heap segments.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const DatabaseOptions& options() const { return options_; }
  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }
  udf::UdfRegistry& udfs() { return registry_; }
  const udf::UdfRegistry& udfs() const { return registry_; }
  ThreadPool& pool() { return *pool_; }

  /// Parses and executes one SQL statement. SELECT returns rows;
  /// CREATE/INSERT/DROP return an empty result set.
  StatusOr<ResultSet> Execute(std::string_view sql);

  /// Executes a statement expected to return no rows; convenience for
  /// DDL in tests and examples.
  Status ExecuteCommand(std::string_view sql);

  /// Scalar convenience: runs a query that must return exactly one
  /// row / one column and coerces it to double.
  StatusOr<double> QueryDouble(std::string_view sql);

  /// Plans a SELECT without executing it and returns the physical
  /// operator tree, one node per line (root first): the parallel
  /// partition scan, materialized cross-join sides with their
  /// pushed-down predicates (the §3.6 join-optimization decisions),
  /// residual filter, aggregation/projection, sort and limit.
  StatusOr<std::string> Explain(std::string_view sql);

 private:
  /// Plans a bound SELECT (parse already done) and runs the plan.
  StatusOr<ResultSet> ExecuteSelect(const SelectStatement& select);

  DatabaseOptions options_;
  storage::Catalog catalog_;
  udf::UdfRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_DATABASE_H_
