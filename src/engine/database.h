#ifndef NLQ_ENGINE_DATABASE_H_
#define NLQ_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "engine/result_set.h"
#include "storage/catalog.h"
#include "udf/udf.h"

namespace nlq::engine {

namespace exec {
class BytecodeCache;
class ViewRegistry;
}  // namespace exec

struct SelectStatement;
struct Statement;

/// Engine configuration.
struct DatabaseOptions {
  /// Horizontal partitions per table — the "parallel processing
  /// threads" of the paper's Teradata deployment (it used 20).
  size_t num_partitions = 8;

  /// Worker threads executing scan/aggregate morsels. 0 = hardware
  /// concurrency. Morsel-driven scheduling decouples this from
  /// `num_partitions`: any thread count drains any partition layout,
  /// and results do not depend on the choice.
  size_t num_threads = 0;

  /// Rows per scan morsel — the unit of work parallel scans hand to
  /// pool workers. Morsel boundaries depend only on (partition,
  /// offset), never on thread count, keeping query results
  /// bit-identical whatever `num_threads` is. 0 = one morsel per
  /// partition (the pre-morsel partition-granular behavior).
  uint64_t morsel_rows = 16384;

  /// Keep per-partition decoded column arrays cached between columnar
  /// fast-path scans (iterative model building re-scans the same table
  /// many times). Appends invalidate the cache; disable to bound
  /// memory at one decode per scan instead.
  bool enable_column_cache = true;

  /// Default per-statement timeout in milliseconds; 0 = none. A
  /// statement that runs past its deadline unwinds with
  /// kDeadlineExceeded within one morsel/batch of latency instead of
  /// running to completion. Overridable per query (QueryOptions).
  int64_t default_timeout_ms = 0;

  /// Default per-query memory budget in bytes for execution-time state
  /// (UDF heap segments, hash-aggregate tables, sort/gather buffers,
  /// decoded-column cache fills); 0 = unlimited. A query that would
  /// exceed it fails with kResourceExhausted — except the column
  /// cache, which falls back to streaming decode. Overridable per
  /// query (QueryOptions).
  uint64_t query_memory_limit = 0;

  /// Collect per-query observability stats (operator actuals, storage
  /// counters, per-worker morsel claims; see common/metrics.h). On by
  /// default — instrumentation is batch-granular and bit-invisible —
  /// and forced on for EXPLAIN ANALYZE regardless of this flag.
  bool collect_query_stats = true;

  /// Compile bound expressions to bytecode and plan the columnar
  /// pipeline where eligible (see DESIGN.md §11). Off plans every
  /// statement on the pure interpreted row path — the differential
  /// oracle. Results are bit-identical either way.
  bool enable_expr_compile = true;

  /// Frame budget of the buffer pool backing spilled tables (see
  /// storage/buffer_pool.h); the pool is created lazily on the first
  /// SpillTable call, so databases that never spill pay nothing. The
  /// pool's MemoryTracker peak proves the storage-layer RSS bound:
  /// scans of arbitrarily large spilled tables stay within this many
  /// bytes (rounded up to whole frames, floor BufferPool::kMinFrames).
  uint64_t buffer_pool_bytes = 64ull << 20;

  /// Directory for spill scratch files. Files are unlinked the moment
  /// they are opened (the fd keeps the data alive), so nothing is left
  /// behind however the process exits.
  std::string spill_directory = "/tmp";

  /// Rows per spill chunk — the decode granularity of spilled scans.
  /// 0 = SpillSegment::kDefaultChunkRows.
  size_t spill_chunk_rows = 0;

  /// Maintain materialized sufficient-statistic views: eligible global
  /// n,L,Q aggregates keep per-morsel partials registered across
  /// statements, so a model rebuild after k appended rows accumulates
  /// only those k rows (O(delta)) instead of rescanning the table.
  /// Results are bit-identical to a full rescan (DESIGN.md §13); any
  /// non-append mutation invalidates the view and falls back to the
  /// normal columnar pipeline.
  bool enable_view_maintenance = false;

  /// Byte budget for stored view partial state across all maintained
  /// views (0 = unlimited, still tracked). Exceeding it fails that
  /// view's accumulate, which degrades the statement to a plain rescan
  /// and drops the view.
  uint64_t view_memory_limit = 256ull << 20;

  /// Maximum number of maintained views kept; registering past the cap
  /// evicts the least-recently-served entry.
  size_t max_maintained_views = 16;
};

/// Per-statement execution overrides for Database::Execute.
struct QueryOptions {
  /// -1 = inherit DatabaseOptions::default_timeout_ms; 0 = no
  /// timeout; > 0 = deadline this many milliseconds after Execute
  /// starts.
  int64_t timeout_ms = -1;

  /// -1 = inherit DatabaseOptions::query_memory_limit; 0 = unlimited;
  /// > 0 = budget in bytes.
  int64_t memory_limit = -1;

  /// Force this statement onto the interpreted row path, as if
  /// DatabaseOptions::enable_expr_compile were off. Used by the
  /// differential tests and the ablation bench to compare the compiled
  /// and interpreted paths on one database instance.
  bool force_interpreted = false;

  /// Externally owned cancel token for this statement; null = the
  /// engine creates its own (cancellable via Database::Cancel only).
  /// The server threads one per session statement so cancel-by-session
  /// reaches a statement whether it is queued in admission, between
  /// registration and its first poll, or mid-execution. Flipping the
  /// token to true cancels the statement within one morsel/batch.
  std::shared_ptr<std::atomic<bool>> cancel_token;
};

/// Embedded relational engine: catalog + SQL executor + UDF registry.
///
/// Statements execute their partition scans in parallel internally,
/// and Execute itself may be called from several threads at once: an
/// internal statement gate runs read-only statements (SELECT/EXPLAIN)
/// concurrently and serializes catalog-mutating ones (CREATE/INSERT/
/// DROP, SpillTable) exclusively against everything else, like a
/// database-level S/X lock. Concurrent SELECTs share the thread pool
/// (sections queue), the bytecode cache, and the decoded-column cache
/// (per-table fill lock) — results stay bit-identical to running the
/// same statements one at a time. This is what the server front end
/// (src/server) builds on; embedded single-threaded use pays one
/// uncontended shared_mutex acquisition per statement.
///
/// last_query_stats() and last_query_id() are "most recent" notions
/// that only make sense to read when no other thread is mid-Execute.
///
/// This is the DBMS substrate standing in for Teradata V2R6: tables
/// are hash-partitioned across AMP-style partitions, scans and
/// aggregations run one task per partition on a thread pool, and
/// aggregate UDFs follow the Init/Accumulate/Merge/Finalize protocol
/// with per-group bounded heap segments.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();  // out-of-line: owns a forward-declared BytecodeCache

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const DatabaseOptions& options() const { return options_; }
  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }
  udf::UdfRegistry& udfs() { return registry_; }
  const udf::UdfRegistry& udfs() const { return registry_; }
  ThreadPool& pool() { return *pool_; }

  /// Parses and executes one SQL statement. SELECT returns rows;
  /// CREATE/INSERT/DROP return an empty result set.
  ///
  /// Every statement runs under a fresh QueryContext: it gets a new
  /// query id (see last_query_id), the configured timeout arms its
  /// deadline, and — when a memory limit applies — a MemoryTracker
  /// scoped to the statement. Cancellation, deadline expiry, or budget
  /// exhaustion unwind with kCancelled / kDeadlineExceeded /
  /// kResourceExhausted; the engine stays usable and the next
  /// statement starts clean.
  StatusOr<ResultSet> Execute(std::string_view sql) {
    return Execute(sql, QueryOptions());
  }

  /// Execute with per-statement overrides of the database-level
  /// timeout and memory budget.
  StatusOr<ResultSet> Execute(std::string_view sql,
                              const QueryOptions& query_options);

  /// Requests cancellation of the in-flight statement with id
  /// `query_id`. Safe to call from any thread; returns NotFound when
  /// no such statement is running (already finished, or never
  /// existed). The cancelled statement returns kCancelled within one
  /// morsel/batch of latency.
  ///
  /// Ordering guarantee: a statement's cancel token is registered
  /// BEFORE its id is published through last_query_id(), so a
  /// canceller that observed the id via last_query_id() never gets
  /// NotFound while that statement is still running — even if the
  /// statement has not reached its first cancellation poll yet (the
  /// flipped token fires at the first poll).
  Status Cancel(uint64_t query_id);

  /// Id assigned to the most recently started statement (0 before the
  /// first one). With one application thread issuing statements, this
  /// is the id a concurrent canceller passes to Cancel.
  uint64_t last_query_id() const {
    return last_query_id_.load(std::memory_order_acquire);
  }

  /// Executes a statement expected to return no rows; convenience for
  /// DDL in tests and examples.
  Status ExecuteCommand(std::string_view sql);

  /// Scalar convenience: runs a query that must return exactly one
  /// row / one column and coerces it to double.
  StatusOr<double> QueryDouble(std::string_view sql);

  /// Plans a SELECT without executing it and returns the physical
  /// operator tree, one node per line (root first): the parallel
  /// partition scan, materialized cross-join sides with their
  /// pushed-down predicates (the §3.6 join-optimization decisions),
  /// residual filter, aggregation/projection, sort and limit.
  StatusOr<std::string> Explain(std::string_view sql) {
    return Explain(sql, QueryOptions());
  }

  /// Explain with per-statement overrides; `force_interpreted` shows
  /// the plan the interpreted oracle would run.
  StatusOr<std::string> Explain(std::string_view sql,
                                const QueryOptions& query_options);

  /// Runs `sql` (a SELECT) and returns the EXPLAIN ANALYZE rendering:
  /// the executed plan with actual rows/batches/time per operator and
  /// a statement totals footer. Equivalent to executing
  /// `EXPLAIN ANALYZE <sql>` and joining the result rows.
  StatusOr<std::string> ExplainAnalyze(std::string_view sql);

  /// Spills table `name` to compressed on-disk segments (one scratch
  /// file per partition under options().spill_directory, unlinked
  /// immediately) and re-points its scans at the database buffer pool.
  /// The in-memory pages and the decoded-column cache are released;
  /// subsequent scans stream chunks through the pool, bit-identical to
  /// the resident table. The table becomes read-only: INSERT fails
  /// with NotSupported until DROP/CREATE. Idempotent per partition.
  Status SpillTable(std::string_view name);

  /// The buffer pool backing spilled tables, or nullptr before the
  /// first SpillTable call.
  storage::BufferPool* buffer_pool() { return buffer_pool_.get(); }

  /// The maintained-view registry, or nullptr when
  /// options().enable_view_maintenance is off. Exposed for tests and
  /// observability (state_bytes / num_views).
  exec::ViewRegistry* view_registry() { return view_registry_.get(); }

  /// Stats of the most recently completed statement, or nullopt before
  /// the first one (or when collection was off). The snapshot survives
  /// subsequent statements until the next one completes.
  const std::optional<QueryStatsSnapshot>& last_query_stats() const {
    return last_query_stats_;
  }

  /// Point-in-time copy of the process-wide metrics registry
  /// (statement outcomes, latency histogram, storage counters,
  /// failpoint/retry events). Shared across Database instances.
  static MetricsSnapshot GetMetricsSnapshot() {
    return MetricsRegistry::Global().GetSnapshot();
  }

 private:
  /// Plans a bound SELECT (parse already done) and runs the plan
  /// under `ctx` (may be null: internal sub-selects of DDL run
  /// without lifecycle control when no context is supplied).
  StatusOr<ResultSet> ExecuteSelect(const SelectStatement& select,
                                    const QueryContext* ctx,
                                    bool force_interpreted);

  /// Dispatches a parsed statement under `ctx`.
  StatusOr<ResultSet> ExecuteStatement(Statement& stmt,
                                       const QueryContext* ctx,
                                       bool force_interpreted);

  DatabaseOptions options_;

  /// The statement gate: SELECT/EXPLAIN hold it shared, catalog- or
  /// data-mutating statements (CREATE/INSERT/DROP, SpillTable) hold it
  /// exclusive. What makes shared mode safe is that every structure a
  /// read-only statement touches is internally synchronized — pool
  /// sections, bytecode cache, per-table column-cache fills, view
  /// registry, live-query map, metrics.
  mutable std::shared_mutex statement_mu_;

  /// Lazily created by SpillTable. Declared before catalog_ so it is
  /// destroyed after it: spilled segments owned by catalog tables
  /// unregister from the pool in their destructors.
  std::unique_ptr<storage::BufferPool> buffer_pool_;

  storage::Catalog catalog_;
  udf::UdfRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;

  /// Compiled-program cache shared by every statement this database
  /// executes (see exec/bytecode.h). Owned here so repeated model
  /// builds reuse their programs.
  std::unique_ptr<exec::BytecodeCache> bytecode_cache_;

  /// Maintained-view registry (see exec/view_registry.h), created only
  /// when options_.enable_view_maintenance is set. Declared after
  /// catalog_ so entries never outlive the tables they reference
  /// observationally (entries hold table pointers but only compare
  /// them; DROP TABLE and SpillTable invalidate eagerly).
  std::unique_ptr<exec::ViewRegistry> view_registry_;

  /// Cancel tokens of in-flight statements, keyed by query id. The
  /// map (not the Database) is what Cancel may touch from another
  /// thread, so it has its own mutex.
  std::mutex live_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>>
      live_queries_;
  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> last_query_id_{0};

  /// Guards writes to last_query_stats_ (concurrent statements both
  /// finish "last"); reads via the accessor are only meaningful when
  /// no statement is in flight.
  std::mutex last_stats_mu_;
  std::optional<QueryStatsSnapshot> last_query_stats_;
};

}  // namespace nlq::engine

#endif  // NLQ_ENGINE_DATABASE_H_
