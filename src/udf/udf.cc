#include "udf/udf.h"

#include "common/strings.h"

namespace nlq::udf {

Status UdfRegistry::RegisterScalar(std::unique_ptr<ScalarUdf> udf) {
  const std::string key = AsciiToLower(udf->name());
  if (scalars_.count(key) > 0) {
    return Status::AlreadyExists("scalar UDF '" + key + "' already registered");
  }
  scalars_[key] = std::move(udf);
  return Status::OK();
}

Status UdfRegistry::RegisterAggregate(std::unique_ptr<AggregateUdf> udf) {
  const std::string key = AsciiToLower(udf->name());
  if (aggregates_.count(key) > 0) {
    return Status::AlreadyExists("aggregate UDF '" + key +
                                 "' already registered");
  }
  aggregates_[key] = std::move(udf);
  return Status::OK();
}

const ScalarUdf* UdfRegistry::FindScalar(const std::string& name) const {
  const auto it = scalars_.find(AsciiToLower(name));
  return it == scalars_.end() ? nullptr : it->second.get();
}

const AggregateUdf* UdfRegistry::FindAggregate(const std::string& name) const {
  const auto it = aggregates_.find(AsciiToLower(name));
  return it == aggregates_.end() ? nullptr : it->second.get();
}

std::vector<std::string> UdfRegistry::ScalarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : scalars_) names.push_back(name);
  return names;
}

std::vector<std::string> UdfRegistry::AggregateNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : aggregates_) names.push_back(name);
  return names;
}

}  // namespace nlq::udf
