#ifndef NLQ_UDF_PACKING_H_
#define NLQ_UDF_PACKING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nlq::udf {

/// Separator for packed numeric vectors ("x1;x2;...;xd").
inline constexpr char kPackSeparator = ';';

/// Packs `values` as separator-joined decimal text. This is the exact
/// run-time cost the paper attributes to the string parameter-passing
/// style: "floating point numbers must be cast as strings".
std::string PackDoubles(const std::vector<double>& values);

/// Appends the packed form of `values` to `out` (hot-path variant).
void AppendPackedDoubles(const std::vector<double>& values, std::string* out);

/// Parses a packed vector back to doubles; the reverse run-time cost
/// ("the long string ... must be parsed to get numbers back").
StatusOr<std::vector<double>> UnpackDoubles(std::string_view packed);

/// Unpacks into a caller-provided fixed-capacity buffer; returns the
/// number of values written, or an error if parsing fails or more than
/// `capacity` values are present. Used inside aggregate UDF state so
/// the hot loop performs no allocation.
StatusOr<size_t> UnpackDoublesInto(std::string_view packed, double* out,
                                   size_t capacity);

}  // namespace nlq::udf

#endif  // NLQ_UDF_PACKING_H_
