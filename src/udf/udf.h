#ifndef NLQ_UDF_UDF_H_
#define NLQ_UDF_UDF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::udf {

/// A scalar User-Defined Function: one value per input row, computed
/// from the row's parameter values only (no cross-row state, matching
/// the paper's "scalar functions cannot keep values in main memory
/// from row to row").
class ScalarUdf {
 public:
  virtual ~ScalarUdf() = default;

  /// SQL-visible (case-insensitive) function name.
  virtual const std::string& name() const = 0;

  /// Type of the returned value.
  virtual storage::DataType return_type() const = 0;

  /// Validates an argument count at plan time. Default accepts any.
  virtual Status CheckArity(size_t num_args) const {
    (void)num_args;
    return Status::OK();
  }

  /// Computes the value for one row.
  virtual StatusOr<storage::Datum> Invoke(
      const std::vector<storage::Datum>& args) const = 0;
};

/// An aggregate UDF following the Teradata four-phase run-time
/// protocol the paper describes in Section 3.4:
///   1. Init      — allocate per-thread (or per-group) state in a
///                  bounded heap segment;
///   2. Accumulate — called once per row with the parameter values;
///   3. Merge     — combine a partial state computed by another
///                  thread into this one (parallel shared-nothing);
///   4. Finalize  — pack the result into a single return value
///                  (UDFs "can only return one value of a simple
///                  data type").
class AggregateUdf {
 public:
  virtual ~AggregateUdf() = default;

  virtual const std::string& name() const = 0;
  virtual storage::DataType return_type() const = 0;

  virtual Status CheckArity(size_t num_args) const {
    (void)num_args;
    return Status::OK();
  }

  /// Allocates zeroed state inside `heap`. Fails with
  /// ResourceExhausted if the state does not fit the segment.
  virtual StatusOr<void*> Init(HeapSegment* heap) const = 0;

  /// Folds one row into `state`.
  virtual Status Accumulate(void* state,
                            const std::vector<storage::Datum>& args) const = 0;

  /// Folds the partial aggregate `other` into `state`.
  ///
  /// Merge-ordering contract: the engine computes one partial state
  /// per scan morsel and folds them in morsel-index order — a fixed
  /// order derived from (partition, row offset), never from which
  /// thread produced which partial. An implementation therefore need
  /// not be commutative-in-floating-point: results stay bit-identical
  /// across thread counts and runs as long as Merge is deterministic
  /// for a given (state, other) pair.
  virtual Status Merge(void* state, const void* other) const = 0;

  /// Produces the single return value.
  virtual StatusOr<storage::Datum> Finalize(const void* state) const = 0;

  /// True if this UDF implements AccumulateSpans, letting the engine's
  /// columnar fast path feed it typed column spans instead of one
  /// boxed row at a time.
  virtual bool SupportsColumnarSpans() const { return false; }

  /// Columnar ROW phase: folds `rows` dense rows into `state` in row
  /// order. `const_args` are the call's leading constant (literal)
  /// arguments; `cols[0..num_cols)` are contiguous double spans for
  /// the remaining arguments, each of length `rows`, with no NULLs
  /// (the caller applies the skip-row NULL policy by compaction, and
  /// may pass rows == 0 for a batch whose rows were all skipped — the
  /// state must still fix its shape then, exactly as Accumulate does
  /// before its own NULL check). Must produce state byte-identical to
  /// `rows` Accumulate calls.
  virtual Status AccumulateSpans(void* state,
                                 const std::vector<storage::Datum>& const_args,
                                 const double* const* cols, size_t num_cols,
                                 size_t rows) const {
    (void)state, (void)const_args, (void)cols, (void)num_cols, (void)rows;
    return Status::Internal(name() + " does not support columnar spans");
  }

  /// Size in bytes of the state when it is a self-contained
  /// trivially-copyable block: memcpy-ing that many bytes from one
  /// Init-ed state to another transplants the aggregate exactly (no
  /// interior pointers, no heap references beyond the block). 0 means
  /// the state is NOT relocatable and may only live where Init placed
  /// it. Relocatability is what lets the engine keep materialized
  /// partial states across statements (the maintained-view registry
  /// clones stored partials before merging so refreshes never corrupt
  /// the registered state).
  virtual size_t RelocatableStateSize() const { return 0; }
};

/// Case-insensitive registry of scalar and aggregate UDFs. The engine
/// resolves function calls in SELECT lists against a registry, exactly
/// as Teradata resolves compiled UDFs "like any other SQL function".
class UdfRegistry {
 public:
  /// Registers a scalar UDF; AlreadyExists on name clash with another
  /// scalar UDF.
  Status RegisterScalar(std::unique_ptr<ScalarUdf> udf);

  /// Registers an aggregate UDF; AlreadyExists on name clash with
  /// another aggregate UDF.
  Status RegisterAggregate(std::unique_ptr<AggregateUdf> udf);

  /// Lookup; nullptr when not registered.
  const ScalarUdf* FindScalar(const std::string& name) const;
  const AggregateUdf* FindAggregate(const std::string& name) const;

  std::vector<std::string> ScalarNames() const;
  std::vector<std::string> AggregateNames() const;

 private:
  std::map<std::string, std::unique_ptr<ScalarUdf>> scalars_;
  std::map<std::string, std::unique_ptr<AggregateUdf>> aggregates_;
};

}  // namespace nlq::udf

#endif  // NLQ_UDF_UDF_H_
