#ifndef NLQ_UDF_UDF_H_
#define NLQ_UDF_UDF_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"
#include "udf/heap_segment.h"

namespace nlq::udf {

/// A scalar User-Defined Function: one value per input row, computed
/// from the row's parameter values only (no cross-row state, matching
/// the paper's "scalar functions cannot keep values in main memory
/// from row to row").
class ScalarUdf {
 public:
  virtual ~ScalarUdf() = default;

  /// SQL-visible (case-insensitive) function name.
  virtual const std::string& name() const = 0;

  /// Type of the returned value.
  virtual storage::DataType return_type() const = 0;

  /// Validates an argument count at plan time. Default accepts any.
  virtual Status CheckArity(size_t num_args) const {
    (void)num_args;
    return Status::OK();
  }

  /// Computes the value for one row.
  virtual StatusOr<storage::Datum> Invoke(
      const std::vector<storage::Datum>& args) const = 0;
};

/// An aggregate UDF following the Teradata four-phase run-time
/// protocol the paper describes in Section 3.4:
///   1. Init      — allocate per-thread (or per-group) state in a
///                  bounded heap segment;
///   2. Accumulate — called once per row with the parameter values;
///   3. Merge     — combine a partial state computed by another
///                  thread into this one (parallel shared-nothing);
///   4. Finalize  — pack the result into a single return value
///                  (UDFs "can only return one value of a simple
///                  data type").
class AggregateUdf {
 public:
  virtual ~AggregateUdf() = default;

  virtual const std::string& name() const = 0;
  virtual storage::DataType return_type() const = 0;

  virtual Status CheckArity(size_t num_args) const {
    (void)num_args;
    return Status::OK();
  }

  /// Allocates zeroed state inside `heap`. Fails with
  /// ResourceExhausted if the state does not fit the segment.
  virtual StatusOr<void*> Init(HeapSegment* heap) const = 0;

  /// Folds one row into `state`.
  virtual Status Accumulate(void* state,
                            const std::vector<storage::Datum>& args) const = 0;

  /// Folds the partial aggregate `other` into `state`.
  virtual Status Merge(void* state, const void* other) const = 0;

  /// Produces the single return value.
  virtual StatusOr<storage::Datum> Finalize(const void* state) const = 0;
};

/// Case-insensitive registry of scalar and aggregate UDFs. The engine
/// resolves function calls in SELECT lists against a registry, exactly
/// as Teradata resolves compiled UDFs "like any other SQL function".
class UdfRegistry {
 public:
  /// Registers a scalar UDF; AlreadyExists on name clash with another
  /// scalar UDF.
  Status RegisterScalar(std::unique_ptr<ScalarUdf> udf);

  /// Registers an aggregate UDF; AlreadyExists on name clash with
  /// another aggregate UDF.
  Status RegisterAggregate(std::unique_ptr<AggregateUdf> udf);

  /// Lookup; nullptr when not registered.
  const ScalarUdf* FindScalar(const std::string& name) const;
  const AggregateUdf* FindAggregate(const std::string& name) const;

  std::vector<std::string> ScalarNames() const;
  std::vector<std::string> AggregateNames() const;

 private:
  std::map<std::string, std::unique_ptr<ScalarUdf>> scalars_;
  std::map<std::string, std::unique_ptr<AggregateUdf>> aggregates_;
};

}  // namespace nlq::udf

#endif  // NLQ_UDF_UDF_H_
