#include "udf/packing.h"

#include <charconv>

#include "common/strings.h"

namespace nlq::udf {

std::string PackDoubles(const std::vector<double>& values) {
  std::string out;
  AppendPackedDoubles(values, &out);
  return out;
}

void AppendPackedDoubles(const std::vector<double>& values, std::string* out) {
  out->reserve(out->size() + values.size() * 12);
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(kPackSeparator);
    AppendDouble(out, values[i]);
  }
}

StatusOr<std::vector<double>> UnpackDoubles(std::string_view packed) {
  std::vector<double> out;
  if (packed.empty()) return out;
  size_t start = 0;
  for (size_t i = 0; i <= packed.size(); ++i) {
    if (i == packed.size() || packed[i] == kPackSeparator) {
      NLQ_ASSIGN_OR_RETURN(double v,
                           ParseDouble(packed.substr(start, i - start)));
      out.push_back(v);
      start = i + 1;
    }
  }
  return out;
}

StatusOr<size_t> UnpackDoublesInto(std::string_view packed, double* out,
                                   size_t capacity) {
  if (packed.empty()) return size_t{0};
  size_t count = 0;
  const char* cursor = packed.data();
  const char* end = packed.data() + packed.size();
  for (;;) {
    if (count >= capacity) {
      return Status::OutOfRange("packed vector exceeds buffer capacity");
    }
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(cursor, end, value);
    if (ec != std::errc()) {
      return Status::ParseError("invalid number in packed vector");
    }
    out[count++] = value;
    if (ptr == end) break;
    if (*ptr != kPackSeparator) {
      return Status::ParseError("unexpected character in packed vector");
    }
    cursor = ptr + 1;
    if (cursor == end) {
      return Status::ParseError("trailing separator in packed vector");
    }
  }
  return count;
}

}  // namespace nlq::udf
