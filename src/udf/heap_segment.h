#ifndef NLQ_UDF_HEAP_SEGMENT_H_
#define NLQ_UDF_HEAP_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace nlq::udf {

/// Default heap capacity per aggregate state. Mirrors the Teradata
/// constraint the paper describes: "the amount of memory that can be
/// allocated ... is currently limited to one 64 kb segment".
inline constexpr size_t kDefaultHeapCapacity = 64 * 1024;

/// Bump allocator bounded to a single segment. Aggregate UDFs keep all
/// cross-row state here; an allocation that would exceed the segment
/// fails (forcing the MAX_d-style static sizing and the partitioned
/// high-d scheme of the paper's Table 6).
class HeapSegment {
 public:
  explicit HeapSegment(size_t capacity = kDefaultHeapCapacity)
      : capacity_(capacity), buffer_(new char[capacity]) {}

  HeapSegment(const HeapSegment&) = delete;
  HeapSegment& operator=(const HeapSegment&) = delete;

  ~HeapSegment() {
    if (tracker_ != nullptr) tracker_->Release(capacity_);
  }

  /// Budget-charged construction: charges `capacity` against `tracker`
  /// up front (segments are allocated whole) and fails with
  /// kResourceExhausted instead of allocating past the query's memory
  /// limit. The charge is released when the segment is destroyed —
  /// partial aggregation states merged away mid-query give their
  /// memory back. A null tracker means no budget (untracked segment).
  static StatusOr<std::unique_ptr<HeapSegment>> Create(
      MemoryTracker* tracker, size_t capacity = kDefaultHeapCapacity) {
    if (tracker != nullptr) {
      NLQ_RETURN_IF_ERROR(tracker->Charge(capacity, "UDF heap segment"));
    }
    auto segment = std::make_unique<HeapSegment>(capacity);
    segment->tracker_ = tracker;
    return segment;
  }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t remaining() const { return capacity_ - used_; }

  /// Allocates `bytes` (8-byte aligned); nullptr when the segment
  /// would overflow.
  void* Allocate(size_t bytes) {
    const size_t aligned = (bytes + 7) & ~size_t{7};
    if (aligned > remaining()) return nullptr;
    void* ptr = buffer_.get() + used_;
    used_ += aligned;
    return ptr;
  }

  /// Typed allocation, zero-initialized. T must be trivially
  /// destructible — UDF state is dropped without destructor calls,
  /// exactly like a C struct in the Teradata API.
  template <typename T>
  T* AllocateObject() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "UDF heap state must be trivially destructible");
    void* ptr = Allocate(sizeof(T));
    if (ptr == nullptr) return nullptr;
    return new (ptr) T{};
  }

 private:
  size_t capacity_;
  size_t used_ = 0;
  std::unique_ptr<char[]> buffer_;
  MemoryTracker* tracker_ = nullptr;  // set by Create; released in dtor
};

}  // namespace nlq::udf

#endif  // NLQ_UDF_HEAP_SEGMENT_H_
